"""Search Merge (§3.3): arbitrary-chunk-count row merging.

"Search Merge uses binary search sampling in all chunk column ids to
find overlapping ranges that can be handled at once.  At first, we
compute the minimum and maximum column id over all involved chunks.
Then, we uniformly sample this range ... Using binary search, every
thread finds the next higher column id in all chunks and computes the
sum over all elements that are below across all chunks.  The thread with
the largest sum that still fits into the available resources, delivers
the data to be merged. ... In case the sampling is too coarse we
sub-sample the range."
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..gpu.block import BlockContext
from .merge_iterative import IterativeRowMerge

__all__ = ["SearchMergeBlock"]


@dataclass
class SearchMergeBlock(IterativeRowMerge):
    """One Search Merge block: one shared row, any number of chunks."""

    KIND_OFFSET = 2 << 20

    def _choose_threshold(
        self,
        ctx: BlockContext,
        remaining_cols: list[np.ndarray],
        capacity: int,
    ) -> int:
        meter = ctx.meter
        threads = ctx.config.threads_per_block

        # min/max column id over all chunks' remaining elements: the
        # runs are sorted, so only first/last entries are read.
        lo = min(int(c[0]) for c in remaining_cols if c.shape[0])
        hi = max(int(c[-1]) for c in remaining_cols if c.shape[0])
        meter.global_read(2 * len(remaining_cols), 4, coalesced=False)

        total_len = sum(c.shape[0] for c in remaining_cols)
        search_depth = max(1, int(np.ceil(np.log2(max(2, total_len)))))

        while True:
            if lo >= hi:
                # single-column range: all duplicates of `lo` must be
                # taken together, and there is at most one per chunk.
                count = int(self._counts_for(remaining_cols, lo).sum())
                if not 0 < count <= capacity:
                    raise AssertionError(
                        "Search Merge cannot cut: single-column range "
                        f"holds {count} elements for capacity {capacity}"
                    )
                return lo
            # one sample per thread, uniformly over [lo, hi]
            step = max(1, (hi - lo) // threads)
            samples = np.arange(lo + step, hi + 1, step, dtype=np.int64)
            if samples.shape[0] == 0 or samples[-1] != hi:
                samples = np.append(samples, hi)
            # every thread binary-searches each chunk; the search
            # frontiers of all threads traverse the same O(log n) upper
            # tree levels, which stay cache resident — so the dominant
            # cost is the comparison work, with one fresh line per
            # (sample, chunk) leaf probe
            meter.alu(
                int(samples.shape[0] * len(remaining_cols) * search_depth * 4)
            )
            meter.global_read(samples.shape[0] * len(remaining_cols), 4)
            counts = np.zeros(samples.shape[0], dtype=np.int64)
            for c in remaining_cols:
                counts += np.searchsorted(c, samples, side="right")
            meter.scan(samples.shape[0])

            viable = (counts > 0) & (counts <= capacity)
            if viable.any():
                return int(samples[np.nonzero(viable)[0][-1]])

            # No sample fits: the count jumps past the capacity between
            # two samples.  counts[-1] == total > capacity, so an
            # overflowing sample exists; sub-sample the gap before it.
            j = int(np.nonzero(counts > capacity)[0][0])
            new_hi = int(samples[j]) - 1
            new_lo = int(samples[j - 1]) + 1 if j > 0 else lo
            if new_hi < new_lo:
                # a single column holds more duplicates than a block can
                # take — impossible while chunk count <= block capacity
                raise AssertionError(
                    "Search Merge cannot cut: one column exceeds capacity"
                )
            lo, hi = new_lo, new_hi

"""2D tile partition of the SUMMA operands, and the inverse assembly.

The grid is √P×√P.  A's rows and B's columns are split into √P balanced
panels (the output ownership), and the shared inner dimension into √P
panels (the SUMMA round index), giving the classic tile layout::

    A[i][k] : rows  of panel i  × inner panel k      (owner device (i,k))
    B[k][j] : inner panel k     × columns of panel j (owner device (k,j))

All slicing and assembly is pure integer index arithmetic plus value
*copies* — no value is ever re-accumulated here — so a partition
followed by :func:`assemble_tiles` is byte-identical to the input, and
the tile nnz/byte totals are conserved exactly (the invariant
``SummaResult.reconcile()`` checks the link counters against).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..sparse.csr import CSRMatrix

__all__ = ["split_points", "csr_tile", "GridPartition", "assemble_tiles"]


def split_points(n: int, parts: int) -> list[int]:
    """``parts + 1`` balanced cut offsets of ``range(n)`` (first cuts
    take the remainder, as in the GLB's uniform nnz split)."""
    if parts < 1:
        raise ValueError("parts must be positive")
    base, rem = divmod(n, parts)
    cuts = [0]
    for p in range(parts):
        cuts.append(cuts[-1] + base + (1 if p < rem else 0))
    return cuts


def csr_tile(m: CSRMatrix, r0: int, r1: int, c0: int, c1: int) -> CSRMatrix:
    """The sub-matrix ``m[r0:r1, c0:c1]`` with re-based indices."""
    lo, hi = int(m.row_ptr[r0]), int(m.row_ptr[r1])
    cols = m.col_idx[lo:hi]
    lens = m.row_ptr[r0 + 1 : r1 + 1] - m.row_ptr[r0:r1]
    rows = np.repeat(np.arange(r1 - r0, dtype=np.int64), lens)
    keep = (cols >= c0) & (cols < c1)
    rows = rows[keep]
    row_ptr = np.zeros(r1 - r0 + 1, dtype=np.int64)
    np.cumsum(np.bincount(rows, minlength=r1 - r0), out=row_ptr[1:])
    return CSRMatrix(
        rows=r1 - r0,
        cols=c1 - c0,
        row_ptr=row_ptr,
        col_idx=cols[keep] - c0,
        values=m.values[lo:hi][keep].copy(),
    )


@dataclass(frozen=True)
class GridPartition:
    """The cut offsets of one SUMMA decomposition."""

    grid: int
    row_splits: tuple[int, ...]  # A rows / C rows
    inner_splits: tuple[int, ...]  # A cols == B rows
    col_splits: tuple[int, ...]  # B cols / C cols

    @classmethod
    def build(cls, a: CSRMatrix, b: CSRMatrix, grid: int) -> "GridPartition":
        if a.cols != b.rows:
            raise ValueError(
                f"inner dimensions do not match: A is {a.shape}, B is {b.shape}"
            )
        return cls(
            grid=grid,
            row_splits=tuple(split_points(a.rows, grid)),
            inner_splits=tuple(split_points(a.cols, grid)),
            col_splits=tuple(split_points(b.cols, grid)),
        )

    def a_tile(self, a: CSRMatrix, i: int, k: int) -> CSRMatrix:
        rs, ks = self.row_splits, self.inner_splits
        return csr_tile(a, rs[i], rs[i + 1], ks[k], ks[k + 1])

    def b_tile(self, b: CSRMatrix, k: int, j: int) -> CSRMatrix:
        ks, cs = self.inner_splits, self.col_splits
        return csr_tile(b, ks[k], ks[k + 1], cs[j], cs[j + 1])

    def a_tiles(self, a: CSRMatrix) -> list[list[CSRMatrix]]:
        return [
            [self.a_tile(a, i, k) for k in range(self.grid)]
            for i in range(self.grid)
        ]

    def b_tiles(self, b: CSRMatrix) -> list[list[CSRMatrix]]:
        return [
            [self.b_tile(b, k, j) for j in range(self.grid)]
            for k in range(self.grid)
        ]


def _hstack_tiles(tiles: list[CSRMatrix], col_splits) -> CSRMatrix:
    """Concatenate same-height tiles left to right (cols re-offset).

    Column ranges are disjoint and increasing, so per-row concatenation
    in tile order keeps every row sorted; values are copied verbatim.
    """
    n = tiles[0].rows
    counts = np.zeros(n, dtype=np.int64)
    for t in tiles:
        counts += t.row_lengths()
    row_ptr = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(counts, out=row_ptr[1:])
    nnz = int(row_ptr[-1])
    col_idx = np.empty(nnz, dtype=np.int64)
    values = np.empty(nnz, dtype=tiles[0].values.dtype)
    placed = np.zeros(n, dtype=np.int64)
    for j, t in enumerate(tiles):
        lens = t.row_lengths()
        rows = np.repeat(np.arange(n, dtype=np.int64), lens)
        rank = np.arange(t.nnz, dtype=np.int64) - t.row_ptr[rows]
        dest = row_ptr[rows] + placed[rows] + rank
        col_idx[dest] = t.col_idx + col_splits[j]
        values[dest] = t.values
        placed += lens
    return CSRMatrix(
        rows=n,
        cols=int(col_splits[-1]),
        row_ptr=row_ptr,
        col_idx=col_idx,
        values=values,
    )


def assemble_tiles(
    tiles: list[list[CSRMatrix]], partition: GridPartition
) -> CSRMatrix:
    """Stitch the per-device C tiles (``tiles[i][j]``) back together."""
    panels = [_hstack_tiles(row, partition.col_splits) for row in tiles]
    row_ptr = [np.zeros(1, dtype=np.int64)]
    offset = 0
    for p in panels:
        row_ptr.append(p.row_ptr[1:] + offset)
        offset += p.nnz
    return CSRMatrix(
        rows=int(partition.row_splits[-1]),
        cols=int(partition.col_splits[-1]),
        row_ptr=np.concatenate(row_ptr),
        col_idx=np.concatenate([p.col_idx for p in panels]),
        values=np.concatenate([p.values for p in panels]),
    )

"""Simulated multi-device node: SUMMA over a √P×√P grid.

Generalises the single simulated device of :mod:`repro.gpu` to a
P-device node with a static 4-colour broadcast fabric (ROADMAP item 3).
Entry point::

    from repro.multi import NodeConfig, summa_spgemm

    res = summa_spgemm(a, b, NodeConfig(devices=4), options)
    res.matrix            # deterministic merged product
    res.reconcile()       # exact link/stage/counter cross-checks
"""

from .node import Interconnect, LinkCounters, NodeConfig, link_key
from .partition import GridPartition, assemble_tiles, csr_tile, split_points
from .summa import SummaReconciliationError, SummaResult, summa_spgemm
from .trace import MergedTraceView, merged_trace_view

__all__ = [
    "GridPartition",
    "Interconnect",
    "LinkCounters",
    "MergedTraceView",
    "NodeConfig",
    "SummaReconciliationError",
    "SummaResult",
    "assemble_tiles",
    "csr_tile",
    "link_key",
    "merged_trace_view",
    "split_points",
    "summa_spgemm",
]

"""Merged per-device observability for one SUMMA run.

:func:`merged_trace_view` folds every tile run's device trace into one
node-wide :class:`~repro.obs.device.DeviceTrace` — SM and worker ids
namespaced by device ordinal so nothing collides — together with the
stage-cycle totals, counters and span forest that make the merged trace
pass :func:`repro.obs.analyze.reconcile` **exactly**: the same
bit-for-bit checks a single-device trace must pass, now over P devices
at once.

Records and spans stay on their device-local clocks (shifting floats
onto the node clock would perturb the re-derived durations); the merge
order is device-major then round, and every exactness check in
``reconcile`` walks records and spans in exactly that order.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..gpu.counters import TrafficCounters
from ..obs.device import DeviceTrace, merge_device_traces
from ..obs.span import Span

__all__ = ["MergedTraceView", "merged_trace_view"]


@dataclass
class MergedTraceView:
    """Result-shaped bundle for :func:`repro.obs.analyze.reconcile`."""

    device_trace: DeviceTrace
    stage_cycles: dict
    counters: TrafficCounters
    spans: Span | None
    devices: int
    restarts: int = 0
    degraded: bool = False
    clock_ghz: float = 0.0
    failure: object = None
    tile_keys: list = field(default_factory=list)


def merged_trace_view(summa_result) -> MergedTraceView:
    """Build the node-wide merged trace of one SUMMA run.

    Requires ``options.device_trace=True`` on the tile runs.  Stage
    cycles are re-accumulated from the *original* per-tile records in
    merge order — not read back from the merged trace — so the
    ``reconcile`` stage check genuinely verifies that renumbering
    altered no cycle and dropped no record.
    """
    g = summa_result.grid
    cfg_sms = None
    entries = []
    span_roots = []
    stage_cycles: dict[str, float] = {}
    counters = TrafficCounters()
    tile_keys = []
    restarts = 0
    degraded = False
    for i in range(g):
        for j in range(g):
            ordinal = i * g + j
            for k in range(g):
                run = summa_result.tile_runs[(i, j, k)]
                result = run.result
                dtrace = result.device_trace
                if dtrace is None:
                    raise ValueError(
                        "tile runs carry no device trace; run summa_spgemm "
                        "with options.device_trace=True"
                    )
                if cfg_sms is None:
                    cfg_sms = dtrace.num_sms
                entries.append((ordinal, dtrace))
                tile_keys.append((i, j, k))
                for rec in dtrace.records:
                    stage_cycles[rec.stage] = (
                        stage_cycles.get(rec.stage, 0.0) + rec.cycles
                    )
                counters.merge(result.counters)
                restarts += result.restarts
                degraded = degraded or result.degraded
                if result.spans is not None:
                    span_roots.append(result.spans)

    merged = merge_device_traces(
        entries,
        clock_ghz=summa_result.clock_ghz,
        total_sms=cfg_sms * summa_result.devices,
    )
    spans = None
    if len(span_roots) == len(entries):
        end = max(
            (s.end_cycle for s in span_roots if s.end_cycle is not None),
            default=0.0,
        )
        spans = Span("summa.devices", 0.0, end)
        spans.children.extend(span_roots)
    return MergedTraceView(
        device_trace=merged,
        stage_cycles=stage_cycles,
        counters=counters,
        spans=spans,
        devices=summa_result.devices,
        restarts=restarts,
        degraded=degraded,
        clock_ghz=summa_result.clock_ghz,
        tile_keys=tile_keys,
    )

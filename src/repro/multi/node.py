"""Node-level configuration for the simulated multi-device SUMMA runs.

A :class:`NodeConfig` extends the single-:class:`DeviceConfig` world to
a P-device node: P identical devices on a √P×√P grid, wired with one
static broadcast bus per grid row (carrying A tiles) and one per grid
column (carrying B tiles).  Each bus is striped into two colour
channels — even SUMMA rounds use colour 0, odd rounds colour 1 — so the
fabric exposes the four static colour classes of the SUMMA 4-colour
pipeline (A×{even,odd} ∪ B×{even,odd}): the broadcast of round ``k+1``
can occupy the other colour channel of the same physical bus while the
compute of round ``k`` is still draining the previous one.

Every broadcast is metered on a per-link :class:`LinkCounters` (the
interconnect analogue of :class:`~repro.gpu.counters.TrafficCounters`),
and ``SummaResult.reconcile()`` checks those counters exactly against
the tile partition of the operands.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace

from ..gpu.config import DeviceConfig

__all__ = ["NodeConfig", "LinkCounters", "Interconnect", "link_key"]


@dataclass(frozen=True)
class NodeConfig:
    """A simulated √P×√P node of identical devices.

    ``link_latency_cycles`` and ``link_bytes_per_cycle`` describe one
    colour channel of one broadcast bus (cycle counts are on the device
    clock, so they compose directly with kernel makespans).  The host
    constants charge the node-side partition, per-device tile merge and
    final assembly passes, keeping the end-to-end makespan a pure
    function of the inputs.
    """

    devices: int = 4
    #: per-device configuration; ``None`` inherits ``options.device``
    device: DeviceConfig | None = None
    link_latency_cycles: float = 2000.0
    link_bytes_per_cycle: float = 16.0
    #: colour channels per operand bus (2 ⇒ the 4-colour pipeline)
    colors_per_bus: int = 2
    partition_cycles_per_nnz: float = 0.5
    merge_cycles_per_entry: float = 4.0
    assemble_cycles_per_entry: float = 1.0

    def __post_init__(self) -> None:
        grid = math.isqrt(self.devices)
        if self.devices < 1 or grid * grid != self.devices:
            raise ValueError(
                f"devices must be a positive perfect square, got {self.devices}"
            )
        if self.link_latency_cycles < 0:
            raise ValueError("link_latency_cycles must be non-negative")
        if self.link_bytes_per_cycle <= 0:
            raise ValueError("link_bytes_per_cycle must be positive")
        if self.colors_per_bus not in (1, 2):
            raise ValueError("colors_per_bus must be 1 or 2")

    @property
    def grid(self) -> int:
        """√P — the side of the device grid (and the SUMMA round count)."""
        return math.isqrt(self.devices)

    def with_(self, **kw) -> "NodeConfig":
        """A copy with the given fields replaced."""
        return replace(self, **kw)

    def broadcast_cycles(self, nbytes: int) -> float:
        """Modeled occupancy of one colour channel for one tile."""
        return self.link_latency_cycles + nbytes / self.link_bytes_per_cycle


@dataclass
class LinkCounters:
    """Traffic meter of one colour channel of one broadcast bus."""

    broadcasts: int = 0
    messages: int = 0  # one per (tile, receiver) pair
    bytes_sent: int = 0  # delivered bytes: tile bytes × fan-out
    busy_cycles: float = 0.0

    def merge(self, other: "LinkCounters") -> None:
        self.broadcasts += other.broadcasts
        self.messages += other.messages
        self.bytes_sent += other.bytes_sent
        self.busy_cycles += other.busy_cycles

    def snapshot(self) -> dict:
        return {
            "broadcasts": self.broadcasts,
            "messages": self.messages,
            "bytes_sent": self.bytes_sent,
            "busy_cycles": self.busy_cycles,
        }


def link_key(bus: str, index: int, color: int) -> str:
    """Canonical name of one colour channel (``row1.color0`` ...)."""
    return f"{bus}{index}.color{color}"


@dataclass
class Interconnect:
    """The node's static broadcast fabric: per-link counters + clocks.

    ``broadcast`` meters one tile broadcast on the channel picked by the
    4-colour schedule and returns its modeled duration; occupancy (when
    the channel is actually free) is the SUMMA driver's timeline job.
    """

    node: NodeConfig
    links: dict[str, LinkCounters] = field(default_factory=dict)

    def channel(self, bus: str, index: int, round_index: int) -> str:
        color = round_index % self.node.colors_per_bus
        return link_key(bus, index, color)

    def broadcast(
        self, bus: str, index: int, round_index: int, nbytes: int, fanout: int
    ) -> tuple[str, float]:
        """Meter one tile broadcast; returns ``(link key, cycles)``."""
        key = self.channel(bus, index, round_index)
        cycles = self.node.broadcast_cycles(nbytes)
        link = self.links.setdefault(key, LinkCounters())
        link.broadcasts += 1
        link.messages += fanout
        link.bytes_sent += nbytes * fanout
        link.busy_cycles += cycles
        return key, cycles

    def totals(self) -> LinkCounters:
        """Fabric-wide counter sum (deterministic key order)."""
        total = LinkCounters()
        for key in sorted(self.links):
            total.merge(self.links[key])
        return total

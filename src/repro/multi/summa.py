"""SUMMA over a simulated multi-device node, 4-colour pipelined.

The driver 2D-partitions the operands over a √P×√P device grid and runs
the √P SUMMA rounds: in round ``k`` device ``(i, k)`` broadcasts
``A[i][k]`` on row bus ``i``, device ``(k, j)`` broadcasts ``B[k][j]``
on column bus ``j``, and every device ``(i, j)`` multiplies the two
tiles it received through :func:`~repro.backends.run_backend` — so the
``adaptive`` backend routes each tile independently.  Two timeline
models are evaluated from the same per-tile durations:

* **pipelined** (the SNIPPETS.md 4-colour schedule): the broadcast of
  round ``k+1`` occupies the *other* colour channel of each bus, so it
  only waits for the same-colour broadcast of round ``k-1`` and for the
  receive buffer that compute round ``k-1`` frees — it overlaps round
  ``k``'s compute;
* **blocking** (1 colour per bus): round ``k+1``'s broadcast cannot
  start before every receiver on the bus has consumed round ``k``,
  i.e. no communication/compute overlap.

Numerical contract (the part a physical SUMMA hand-waves): per device,
per-round partial tiles are merged **in ascending round order** — a
deterministic left fold, byte-identical across runs, host engines and
both timeline modes.  For ``P = 1`` the result is trivially the
single-device backend result.  For ``P > 1`` an output entry whose
inner products span several rounds is folded at round granularity
instead of the single device's chunk granularity, so cross-P
byte-identity additionally requires the cross-round additions to be
exact — which holds for the integer-valued workloads this node exists
for (AMG Galerkin chains, 0/1 graph squarings) and is asserted by
``benchmarks/bench_summa.py``; for general float inputs the merged
pattern is still byte-identical and values agree to accumulation
round-off (``verify="close"``).  See ARCHITECTURE §11.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..backends.registry import run_backend
from ..core.options import AcSpgemmOptions, DEFAULT_OPTIONS
from ..gpu.counters import TrafficCounters
from ..obs.span import Span
from ..sparse.csr import CSRMatrix
from .node import Interconnect, LinkCounters, NodeConfig, link_key
from .partition import GridPartition, assemble_tiles

__all__ = ["SummaResult", "SummaReconciliationError", "summa_spgemm"]


class SummaReconciliationError(ValueError):
    """The node's interconnect/stage accounting disagrees with itself."""


@dataclass
class TileRun:
    """One local multiply: device ``(i, j)``, round ``k``."""

    i: int
    j: int
    k: int
    result: object  # AcSpgemmResult
    a_bytes: int
    b_bytes: int
    #: node-clock compute window in the requested timeline mode
    start_cycle: float = 0.0
    end_cycle: float = 0.0


@dataclass
class SummaResult:
    """Result + accounting of one multi-device SUMMA multiply."""

    matrix: CSRMatrix
    node: NodeConfig
    partition: GridPartition
    backend: str
    pipelined: bool
    #: all per-tile backend results, keyed ``(i, j, k)``
    tile_runs: dict = field(default_factory=dict)
    #: per-link interconnect counters (4-colour keys)
    link_counters: dict = field(default_factory=dict)
    #: node-level work sums per stage (PART/BCAST/LMUL/TMERGE/ASM);
    #: sums of work, not the overlapped makespan
    stage_cycles: dict = field(default_factory=dict)
    #: device-compute counters merged over every tile run
    counters: TrafficCounters = field(default_factory=TrafficCounters)
    #: modeled end-to-end cycles in the requested mode
    makespan_cycles: float = 0.0
    makespan_pipelined: float = 0.0
    makespan_blocking: float = 0.0
    round_records: list = field(default_factory=list)
    spans: Span | None = None
    degraded_tiles: list = field(default_factory=list)
    restarts: int = 0
    clock_ghz: float = 0.0

    @property
    def devices(self) -> int:
        return self.node.devices

    @property
    def grid(self) -> int:
        return self.node.grid

    @property
    def overlap_saved_cycles(self) -> float:
        """Cycles the 4-colour pipeline hides versus blocking rounds."""
        return self.makespan_blocking - self.makespan_pipelined

    @property
    def seconds(self) -> float:
        return self.makespan_cycles / (self.clock_ghz * 1e9)

    def device_ordinal(self, i: int, j: int) -> int:
        return i * self.grid + j

    def tile_results(self, i: int, j: int) -> list:
        """The per-round backend results of device ``(i, j)``."""
        g = self.grid
        return [self.tile_runs[(i, j, k)].result for k in range(g)]

    # -- reconciliation ---------------------------------------------------

    def reconcile(self) -> dict:
        """Exact cross-checks of the node accounting; raises on mismatch.

        * every 4-colour link's counters re-derive from the partition
          (tile bytes × fan-out, one message per receiver, modeled busy
          cycles) — nothing moved that the tiles don't explain;
        * partitioned nnz is conserved (operands → tiles → merged C);
        * device counters merged over the tile runs equal
          ``result.counters`` field-for-field;
        * the LMUL/TMERGE/ASM stage sums re-accumulate from the tile
          runs in merge order, bit for bit.
        """

        def fail(message: str) -> None:
            raise SummaReconciliationError(message)

        g = self.grid
        expected: dict[str, LinkCounters] = {}
        if g > 1:
            fanout = g - 1
            for k in range(g):
                for i in range(g):
                    run = self.tile_runs[(i, 0, k)]
                    key = link_key("row", i, k % self.node.colors_per_bus)
                    link = expected.setdefault(key, LinkCounters())
                    link.broadcasts += 1
                    link.messages += fanout
                    link.bytes_sent += run.a_bytes * fanout
                    link.busy_cycles += self.node.broadcast_cycles(run.a_bytes)
                for j in range(g):
                    run = self.tile_runs[(0, j, k)]
                    key = link_key("col", j, k % self.node.colors_per_bus)
                    link = expected.setdefault(key, LinkCounters())
                    link.broadcasts += 1
                    link.messages += fanout
                    link.bytes_sent += run.b_bytes * fanout
                    link.busy_cycles += self.node.broadcast_cycles(run.b_bytes)
        if sorted(expected) != sorted(self.link_counters):
            fail(
                f"link set mismatch: expected {sorted(expected)}, "
                f"recorded {sorted(self.link_counters)}"
            )
        for key in sorted(expected):
            if expected[key].snapshot() != self.link_counters[key].snapshot():
                fail(
                    f"link {key} counters mismatch: expected "
                    f"{expected[key].snapshot()}, recorded "
                    f"{self.link_counters[key].snapshot()}"
                )

        # conservation: C nnz assembles exactly from the merged tiles
        merged_nnz = 0
        for i in range(g):
            for j in range(g):
                union = set()
                for k in range(g):
                    t = self.tile_runs[(i, j, k)].result.matrix
                    rows = np.repeat(
                        np.arange(t.rows, dtype=np.int64), t.row_lengths()
                    )
                    union.update(zip(rows.tolist(), t.col_idx.tolist()))
                merged_nnz += len(union)
        if merged_nnz != self.matrix.nnz:
            fail(
                f"merged nnz {self.matrix.nnz} != union of tile patterns "
                f"{merged_nnz}"
            )

        merged = TrafficCounters()
        for key in sorted(self.tile_runs):
            merged.merge(self.tile_runs[key].result.counters)
        if merged != self.counters:
            fail(
                f"device counters mismatch: tiles {merged.snapshot()} != "
                f"result {self.counters.snapshot()}"
            )

        lmul = 0.0
        for key in sorted(self.tile_runs):
            lmul += self.tile_runs[key].result.total_cycles
        if lmul != self.stage_cycles.get("LMUL", 0.0):
            fail(
                f"LMUL cycles {self.stage_cycles.get('LMUL')!r} do not "
                f"re-accumulate from the tile runs ({lmul!r})"
            )
        bcast = 0.0
        for key in sorted(self.link_counters):
            bcast += self.link_counters[key].busy_cycles
        if bcast != self.stage_cycles.get("BCAST", 0.0):
            fail(
                f"BCAST cycles {self.stage_cycles.get('BCAST')!r} != "
                f"link busy sum {bcast!r}"
            )
        return {
            "links_exact": True,
            "nnz_conserved": True,
            "counters_exact": True,
            "stage_cycles_exact": True,
            "links": {k: self.link_counters[k].snapshot()
                      for k in sorted(self.link_counters)},
        }

    def summary(self) -> dict:
        """Deterministic JSON-ready summary (CLI/bench output)."""
        return {
            "devices": self.devices,
            "grid": self.grid,
            "backend": self.backend,
            "pipelined": self.pipelined,
            "rows": self.matrix.rows,
            "cols": self.matrix.cols,
            "nnz": self.matrix.nnz,
            "makespan_cycles": self.makespan_cycles,
            "makespan_pipelined": self.makespan_pipelined,
            "makespan_blocking": self.makespan_blocking,
            "overlap_saved_cycles": self.overlap_saved_cycles,
            "stage_cycles": {k: self.stage_cycles[k]
                             for k in sorted(self.stage_cycles)},
            "links": {k: self.link_counters[k].snapshot()
                      for k in sorted(self.link_counters)},
            "degraded_tiles": [list(t) for t in self.degraded_tiles],
            "restarts": self.restarts,
            "seconds": self.seconds,
        }


def _merge_round_tiles(tiles: list[CSRMatrix]) -> tuple[CSRMatrix, int]:
    """Merge one device's per-round partial C tiles, ascending round.

    Pattern = union; each entry's value is the left fold of its round
    contributions in round order (``p0``, then ``+= p1``, ...), applied
    round-by-round with vectorised scatter-adds — deterministic and
    mode/engine independent.  Returns the merged tile and the number of
    scatter updates (the TMERGE work measure).
    """
    live = [t for t in tiles if t.nnz]
    if not live:
        first = tiles[0]
        return (
            CSRMatrix.empty(first.rows, first.cols, dtype=first.values.dtype),
            0,
        )
    if len(live) == 1:
        return live[0], live[0].nnz
    rows_n, cols_n = live[0].rows, live[0].cols
    keys_per = []
    for t in live:
        rows = np.repeat(np.arange(rows_n, dtype=np.int64), t.row_lengths())
        keys_per.append(rows * cols_n + t.col_idx)
    union = np.unique(np.concatenate(keys_per))
    values = np.zeros(union.size, dtype=live[0].values.dtype)
    written = np.zeros(union.size, dtype=bool)
    updates = 0
    for t, keys in zip(live, keys_per):
        pos = np.searchsorted(union, keys)
        fresh = ~written[pos]
        # first contribution is copied (not 0.0 + x: that would flush a
        # signed zero), later rounds accumulate in ascending order
        values[pos[fresh]] = t.values[fresh]
        values[pos[~fresh]] += t.values[~fresh]
        written[pos] = True
        updates += t.nnz
    out_rows = (union // cols_n).astype(np.int64)
    row_ptr = np.zeros(rows_n + 1, dtype=np.int64)
    np.cumsum(np.bincount(out_rows, minlength=rows_n), out=row_ptr[1:])
    return (
        CSRMatrix(
            rows=rows_n,
            cols=cols_n,
            row_ptr=row_ptr,
            col_idx=(union % cols_n).astype(np.int64),
            values=values,
        ),
        updates,
    )


def _timeline(node, durs_a, durs_b, tile_cycles, *, pipelined, t0):
    """Per-device compute windows for one mode; pure float arithmetic.

    ``durs_a[i][k]`` / ``durs_b[j][k]`` are the bus occupancies,
    ``tile_cycles[(i, j, k)]`` the local-multiply durations.  Returns
    ``(compute_start, compute_end, arrivals, bcast_windows)``.
    """
    g = node.grid
    compute_start: dict = {}
    compute_end: dict = {}
    arrivals: dict = {}
    end_a = [[0.0] * g for _ in range(g)]  # row bus i, round k
    end_b = [[0.0] * g for _ in range(g)]  # col bus j, round k
    start_a = [[0.0] * g for _ in range(g)]
    start_b = [[0.0] * g for _ in range(g)]
    for k in range(g):
        back = 2 if (pipelined and node.colors_per_bus == 2) else 1
        for i in range(g):
            ready = t0 if k < back else max(
                compute_end[(i, j, k - back)] for j in range(g)
            )
            chan_free = t0 if k == 0 else end_a[i][k - 1]
            start_a[i][k] = max(ready, chan_free)
            end_a[i][k] = start_a[i][k] + durs_a[i][k]
        for j in range(g):
            ready = t0 if k < back else max(
                compute_end[(i, j, k - back)] for i in range(g)
            )
            chan_free = t0 if k == 0 else end_b[j][k - 1]
            start_b[j][k] = max(ready, chan_free)
            end_b[j][k] = start_b[j][k] + durs_b[j][k]
        for i in range(g):
            for j in range(g):
                arr_a = t0 if (g == 1 or j == k) else end_a[i][k]
                arr_b = t0 if (g == 1 or i == k) else end_b[j][k]
                prev = t0 if k == 0 else compute_end[(i, j, k - 1)]
                start = max(prev, arr_a, arr_b)
                compute_start[(i, j, k)] = start
                compute_end[(i, j, k)] = start + tile_cycles[(i, j, k)]
                arrivals[(i, j, k)] = (arr_a, arr_b)
    windows = {"a": (start_a, end_a), "b": (start_b, end_b)}
    return compute_start, compute_end, arrivals, windows


def summa_spgemm(
    a: CSRMatrix,
    b: CSRMatrix,
    node: NodeConfig | None = None,
    options: AcSpgemmOptions | None = None,
    *,
    backend: str = "ac-spgemm",
    pipelined: bool = True,
    tile_fault_plans: dict | None = None,
) -> SummaResult:
    """Multiply ``a @ b`` on a simulated √P×√P node.

    ``tile_fault_plans`` maps ``(i, j, k)`` to a
    :class:`~repro.resilience.FaultPlan` injected into that one local
    multiply (the degraded tile follows ``options.on_failure``; with
    ``"fallback"`` its partial still merges deterministically).
    """
    node = node or NodeConfig()
    opts = options or DEFAULT_OPTIONS
    if node.device is not None:
        opts = opts.with_(device=node.device)
    g = node.grid
    cfg = opts.device
    part = GridPartition.build(a, b, g)
    a_tiles = part.a_tiles(a)
    b_tiles = part.b_tiles(b)
    part_cycles = (a.nnz + b.nnz + a.rows + b.rows) * node.partition_cycles_per_nnz

    fabric = Interconnect(node=node)
    durs_a = [[0.0] * g for _ in range(g)]
    durs_b = [[0.0] * g for _ in range(g)]
    if g > 1:
        for k in range(g):
            for i in range(g):
                _, durs_a[i][k] = fabric.broadcast(
                    "row", i, k, a_tiles[i][k].nbytes(), g - 1
                )
            for j in range(g):
                _, durs_b[j][k] = fabric.broadcast(
                    "col", j, k, b_tiles[k][j].nbytes(), g - 1
                )

    # local multiplies: every tile through the backend registry, in
    # deterministic (round, row, col) order
    runs: dict = {}
    degraded: list = []
    restarts = 0
    for k in range(g):
        for i in range(g):
            for j in range(g):
                tile_opts = opts
                if tile_fault_plans and (i, j, k) in tile_fault_plans:
                    tile_opts = opts.with_(fault_plan=tile_fault_plans[(i, j, k)])
                result = run_backend(
                    backend,
                    a_tiles[i][k],
                    b_tiles[k][j],
                    tile_opts,
                    scheduler_seed=(i * g + j) * g + k,
                )
                runs[(i, j, k)] = TileRun(
                    i=i,
                    j=j,
                    k=k,
                    result=result,
                    a_bytes=a_tiles[i][k].nbytes(),
                    b_bytes=b_tiles[k][j].nbytes(),
                )
                if result.degraded:
                    degraded.append((i, j, k))
                restarts += result.restarts

    tile_cycles = {key: runs[key].result.total_cycles for key in runs}
    start_p, end_p, arr_p, _ = _timeline(
        node, durs_a, durs_b, tile_cycles, pipelined=True, t0=part_cycles
    )
    start_b_, end_b_, arr_b_, _ = _timeline(
        node, durs_a, durs_b, tile_cycles, pipelined=False, t0=part_cycles
    )
    start_m, end_m, arr_m = (
        (start_p, end_p, arr_p) if pipelined else (start_b_, end_b_, arr_b_)
    )
    for key, run in runs.items():
        run.start_cycle = start_m[key]
        run.end_cycle = end_m[key]

    # deterministic per-device merge (ascending round), then assembly
    merged_tiles = []
    merge_updates: dict = {}
    for i in range(g):
        row = []
        for j in range(g):
            tile, updates = _merge_round_tiles(
                [runs[(i, j, k)].result.matrix for k in range(g)]
            )
            merge_updates[(i, j)] = updates
            row.append(tile)
        merged_tiles.append(row)
    matrix = assemble_tiles(merged_tiles, part)

    merge_cycles = {
        d: merge_updates[d] * node.merge_cycles_per_entry for d in merge_updates
    }
    asm_cycles = matrix.nnz * node.assemble_cycles_per_entry

    def finish(end):
        last = max(end[(i, j, g - 1)] for i in range(g) for j in range(g))
        merge_done = max(
            end[(i, j, g - 1)] + merge_cycles[(i, j)]
            for i in range(g)
            for j in range(g)
        )
        return last, merge_done + asm_cycles

    _, makespan_pipe = finish(end_p)
    _, makespan_block = finish(end_b_)

    # node-level work sums (per-stage totals, in deterministic order)
    stage_cycles = {"PART": part_cycles}
    bcast = 0.0
    for key in sorted(fabric.links):
        bcast += fabric.links[key].busy_cycles
    stage_cycles["BCAST"] = bcast
    lmul = 0.0
    for key in sorted(runs):
        lmul += runs[key].result.total_cycles
    stage_cycles["LMUL"] = lmul
    tmerge = 0.0
    for d in sorted(merge_cycles):
        tmerge += merge_cycles[d]
    stage_cycles["TMERGE"] = tmerge
    stage_cycles["ASM"] = asm_cycles

    counters = TrafficCounters()
    for key in sorted(runs):
        counters.merge(runs[key].result.counters)

    # span tree: node narrative on the node clock; per-device subtrees
    # grafted under their summa.round span on the device-local clock
    # (node placement lives in the start_cycle_on_node attr, applied at
    # Perfetto export)
    makespan = makespan_pipe if pipelined else makespan_block
    root = Span(
        "summa",
        0.0,
        makespan,
        attrs={
            "devices": node.devices,
            "grid": g,
            "backend": backend,
            "pipelined": pipelined,
        },
    )
    root.children.append(Span("summa.partition", 0.0, part_cycles))
    round_records = []
    prev_end = part_cycles
    for k in range(g):
        round_end = max(end_m[(i, j, k)] for i in range(g) for j in range(g))
        arrival_max = max(
            max(arr_m[(i, j, k)]) for i in range(g) for j in range(g)
        )
        exposed = max(0.0, min(arrival_max, round_end) - prev_end)
        rspan = Span(
            "summa.round", prev_end, round_end, attrs={"round": k}
        )
        rspan.children.append(
            Span(
                "summa.broadcast",
                prev_end,
                prev_end + exposed,
                attrs={"exposed_cycles": exposed,
                       "color": k % node.colors_per_bus},
            )
        )
        for i in range(g):
            for j in range(g):
                run = runs[(i, j, k)]
                sub = run.result.spans
                if sub is not None:
                    sub.attrs["device"] = i * g + j
                    sub.attrs["device_grid"] = f"({i},{j})"
                    sub.attrs["round"] = k
                    sub.attrs["start_cycle_on_node"] = run.start_cycle
                    rspan.children.append(sub)
        root.children.append(rspan)
        round_records.append(
            {
                "round": k,
                "color": k % node.colors_per_bus,
                "start": prev_end,
                "end": round_end,
                "exposed_broadcast_cycles": exposed,
                "compute_cycles": {
                    f"({i},{j})": tile_cycles[(i, j, k)]
                    for i in range(g)
                    for j in range(g)
                },
            }
        )
        prev_end = round_end
    merge_done = max(
        end_m[(i, j, g - 1)] + merge_cycles[(i, j)]
        for i in range(g)
        for j in range(g)
    )
    root.children.append(Span("summa.merge", prev_end, merge_done))
    root.children.append(Span("summa.assemble", merge_done, makespan))

    return SummaResult(
        matrix=matrix,
        node=node,
        partition=part,
        backend=backend,
        pipelined=pipelined,
        tile_runs=runs,
        link_counters=fabric.links,
        stage_cycles=stage_cycles,
        counters=counters,
        makespan_cycles=makespan,
        makespan_pipelined=makespan_pipe,
        makespan_blocking=makespan_block,
        round_records=round_records,
        spans=root,
        degraded_tiles=degraded,
        restarts=restarts,
        clock_ghz=cfg.clock_ghz,
    )

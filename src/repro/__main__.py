"""``python -m repro`` — shorthand for the CLI runner."""

from .cli import main

if __name__ == "__main__":
    raise SystemExit(main())

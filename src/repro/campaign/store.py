"""Campaign checkpoint store: per-worker JSONL shards and the merge.

Each worker appends one JSON line per finished cell to its own shard
file and fsyncs it, so a killed campaign loses at most the cell that
was mid-flight (a torn final line is detected and ignored on load).
The merge reads every shard, validates each line against the current
plan's content keys, and emits one byte-deterministic artifact: cells
in plan order, worker identity and host timings stripped, canonical
JSON serialization.  The artifact is therefore identical whether the
campaign ran with one worker, with eight, or was killed and resumed.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from ..bench.harness import CACHE_VERSION
from .plan import CampaignConfig, CampaignError

__all__ = [
    "ShardWriter",
    "read_shard_diagnostics",
    "read_shard_lines",
    "load_completed",
    "merged_artifact_bytes",
    "write_atomic",
]

SHARD_DIR = "shards"

#: line fields that survive into the merged artifact (deterministic);
#: everything else (worker id, host wallclock) is execution detail
_ARTIFACT_FIELDS = ("id", "key", "status", "attempts", "record", "error")


def shard_dir(directory: str | Path) -> Path:
    """The shard subdirectory of a campaign directory."""
    return Path(directory) / SHARD_DIR


class ShardWriter:
    """Append-only, crash-safe JSONL writer for one worker."""

    def __init__(self, directory: str | Path, worker: int | str) -> None:
        d = shard_dir(directory)
        d.mkdir(parents=True, exist_ok=True)
        label = f"{worker:02d}" if isinstance(worker, int) else str(worker)
        self.path = d / f"shard-{label}.jsonl"
        self._fh = open(self.path, "a", encoding="utf-8")

    def append(self, line: dict) -> None:
        """Write one checkpoint line durably (flush + fsync)."""
        self._fh.write(json.dumps(line, sort_keys=True) + "\n")
        self._fh.flush()
        os.fsync(self._fh.fileno())

    def close(self) -> None:
        self._fh.close()


def read_shard_lines(path: str | Path) -> list[dict]:
    """Parse one shard, skipping a torn (mid-write) final line."""
    lines: list[dict] = []
    try:
        raw = Path(path).read_text(encoding="utf-8")
    except OSError:
        return lines
    for i, text in enumerate(raw.splitlines()):
        if not text.strip():
            continue
        try:
            obj = json.loads(text)
        except json.JSONDecodeError:
            # only the *last* line may legally be torn by a kill
            if i == raw.count("\n"):
                continue
            raise CampaignError(
                f"corrupt checkpoint line {i + 1} in {path}"
            ) from None
        if isinstance(obj, dict) and "id" in obj and "key" in obj:
            lines.append(obj)
    return lines


def read_shard_diagnostics(path: str | Path) -> list[dict]:
    """Non-cell lines of one shard: heartbeats, starvation, drain marks.

    Workers interleave ``{"kind": ...}`` diagnostic lines (no ``id``/
    ``key``, so resume and merge never see them) with cell checkpoints;
    this lenient reader surfaces them for post-mortems and tests.
    """
    out: list[dict] = []
    try:
        raw = Path(path).read_text(encoding="utf-8")
    except OSError:
        return out
    for text in raw.splitlines():
        if not text.strip():
            continue
        try:
            obj = json.loads(text)
        except json.JSONDecodeError:
            continue  # torn line; the strict reader polices corruption
        if isinstance(obj, dict) and "kind" in obj and "id" not in obj:
            out.append(obj)
    return out


def load_completed(
    directory: str | Path, expected_keys: dict[str, str]
) -> dict[str, dict]:
    """All valid checkpointed cells of a campaign directory.

    ``expected_keys`` maps cell id -> current content key; lines whose
    key does not match (stale generator, different options, older
    ``CACHE_VERSION``) are ignored rather than trusted.  Duplicate
    lines for one cell must agree on the outcome — the simulator is
    deterministic, so a disagreement means the checkpoint is corrupt.
    """
    completed: dict[str, dict] = {}
    d = shard_dir(directory)
    if not d.is_dir():
        return completed
    for path in sorted(d.glob("*.jsonl")):
        for line in read_shard_lines(path):
            cid = line["id"]
            if expected_keys.get(cid) != line["key"]:
                continue
            seen = completed.get(cid)
            if seen is not None:
                if {k: seen.get(k) for k in _ARTIFACT_FIELDS} != {
                    k: line.get(k) for k in _ARTIFACT_FIELDS
                }:
                    raise CampaignError(
                        f"conflicting checkpoints for cell {cid!r} "
                        f"(deterministic cells can never disagree)"
                    )
                continue
            completed[cid] = line
    return completed


def merged_artifact_bytes(
    config: CampaignConfig,
    cells,
    completed: dict[str, dict],
) -> bytes:
    """The canonical merged artifact for a *complete* campaign.

    Raises :class:`CampaignError` while any cell is missing; the
    serialization is canonical JSON (sorted keys, fixed separators, no
    timestamps or worker identity), so any two complete runs of the
    same plan produce byte-identical artifacts.
    """
    missing = [c.id for c in cells if c.id not in completed]
    if missing:
        raise CampaignError(
            f"campaign incomplete: {len(missing)}/{len(cells)} cells "
            f"missing (first: {missing[0]!r})"
        )
    out_cells = []
    for c in cells:
        line = completed[c.id]
        out_cells.append({k: line.get(k) for k in _ARTIFACT_FIELDS})
    doc = {
        "format": 1,
        "cache_version": CACHE_VERSION,
        "config": config.to_json(),
        "n_cells": len(out_cells),
        "cells": out_cells,
    }
    return (json.dumps(doc, sort_keys=True, separators=(",", ":")) + "\n").encode()


def write_atomic(path: str | Path, data: bytes) -> Path:
    """Write ``data`` via a same-directory temp file + atomic rename."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(f".{path.name}.tmp.{os.getpid()}")
    tmp.write_bytes(data)
    os.replace(tmp, path)
    return path

"""Campaign worker: executes cells pulled from a shared queue.

Each worker process rebuilds its matrices from the (deterministic,
seeded) generators, runs one cell at a time through the bench harness,
and checkpoints every outcome — success or exhausted retry budget —
to its own JSONL shard.  Failed cells are *recorded*, never dropped:
the merged artifact carries their error context so a campaign over an
adversarial collection still yields one complete, deterministic
document.

Liveness is observable and termination is graceful:

* An empty queue no longer makes a worker vanish silently after 60 s.
  The worker polls, appends ``heartbeat`` diagnostic lines to its shard
  while idle, and — once the starvation window elapses — checkpoints a
  typed :class:`~repro.resilience.errors.WorkerStarved` diagnostic
  before exiting, so a wedged queue (dead parent, lost sentinel) is
  attributable post-mortem.  Diagnostic lines carry no ``id``/``key``
  and are therefore invisible to the resume/merge machinery.
* ``SIGTERM`` drains: the in-flight cell finishes and is fsynced to the
  shard, shared-memory mappings are closed, a ``sigterm-drain``
  diagnostic is recorded, and the worker exits 0.  (``SIGKILL`` safety
  — torn final line, shard resume — is covered separately.)
* An optional per-cell wallclock timeout raises typed
  :class:`~repro.resilience.errors.DeadlineExceeded` inside the attempt
  loop, counting against the existing retry budget like any other
  failure.
"""

from __future__ import annotations

import hashlib
import json
import queue as queue_mod
import signal
import threading
import time
import traceback
from contextlib import nullcontext

from ..bench.harness import MatrixCase, run_case
from ..obs.trace import (
    RequestTrace,
    TraceContext,
    derive_span_id,
    derive_trace_id,
    use_trace,
)
from ..resilience.errors import DeadlineExceeded, ReproError, WorkerStarved
from .plan import (
    CampaignConfig,
    CellSpec,
    cell_key,
    config_entries,
    enumerate_cells,
    matrix_fingerprint,
)
from .store import ShardWriter

__all__ = ["campaign_trace_meta", "execute_cell", "worker_main"]


def campaign_trace_meta(config: CampaignConfig) -> dict:
    """The campaign's trace hand-off pair, derived from the plan alone.

    Every worker (and the inline runner) derives the same
    ``{"trace_id", "parent_id"}`` from the canonical config JSON, so a
    cell's trace ids are identical no matter which worker executes it —
    the same worker-independence rule as the checkpoint ``key``.
    """
    text = json.dumps(
        config.to_json(), sort_keys=True, default=str, separators=(",", ":")
    )
    content = hashlib.blake2b(text.encode(), digest_size=16).hexdigest()
    trace_id = derive_trace_id(content, 0)
    return {
        "trace_id": trace_id,
        "parent_id": derive_span_id(trace_id, "", "campaign", 0),
    }

_DTYPES = {"float32": "float32", "float64": "float64"}

#: queue poll interval: bounds both SIGTERM-drain latency and the
#: resolution of the starvation clock
_POLL_SECONDS = 0.5

#: idle seconds between heartbeat diagnostic lines
_HEARTBEAT_SECONDS = 15.0

#: idle seconds after which a worker records WorkerStarved and exits
DEFAULT_STARVE_TIMEOUT = 60.0


def _algorithm_for(cell: CellSpec, options):
    """Resolve the cell's algorithm, honouring non-default options.

    Mirrors :meth:`ResultCache.get_or_run`: pipeline options apply to
    AC-SpGEMM and to the ``repro.backends`` engines (which run the same
    pipeline options); the fixed-function baselines always run stock.
    """
    from ..baselines.registry import BACKEND_ALGORITHMS

    if options is None or (
        cell.algorithm != "ac-spgemm" and cell.algorithm not in BACKEND_ALGORITHMS
    ):
        return cell.algorithm
    if cell.algorithm in BACKEND_ALGORITHMS:
        from ..backends.adapter import BackendAlgorithm

        return BackendAlgorithm(cell.algorithm, options=options)
    from ..baselines.acspgemm_adapter import AcSpgemm
    from ..baselines.registry import make_algorithm

    base = make_algorithm(cell.algorithm)
    return AcSpgemm(device=base.device, costs=base.costs, options=options)


def _raise_cell_deadline(signum, frame):
    raise DeadlineExceeded("cell wallclock timeout", stage="cell")


def execute_cell(
    case: MatrixCase,
    cell: CellSpec,
    config: CampaignConfig,
    *,
    key: str,
    worker: int,
    runner=None,
    cell_timeout: float | None = None,
    trace_meta: dict | None = None,
) -> dict:
    """Run one cell under the per-cell retry budget.

    Returns the checkpoint line.  ``runner`` is injectable for tests;
    it defaults to :func:`repro.bench.harness.run_case`.  A cell that
    keeps failing after ``config.retries`` extra attempts is recorded
    with ``status: "failed"`` and the typed error context instead of
    being dropped.

    ``cell_timeout`` (seconds, runtime knob — never part of the plan)
    bounds each attempt's wallclock via ``SIGALRM``; an expired attempt
    raises typed :class:`DeadlineExceeded` and consumes one retry like
    any other failure.  The alarm is only armed on the main thread of a
    process (always true for spawned campaign workers); elsewhere the
    timeout is a no-op rather than a wrong answer.

    ``trace_meta`` (see :func:`campaign_trace_meta`) opts the cell into
    request tracing: the attempts run under an ambient per-cell trace
    (cell span ids derive from ``cell.index``, so they are identical
    whichever worker ran it) and the checkpoint line gains a ``trace``
    field — outside :data:`repro.campaign.store._ARTIFACT_FIELDS`, so
    the merged artifact stays byte-identical.
    """
    import numpy as np

    run = runner if runner is not None else run_case
    dtype = np.dtype(_DTYPES[cell.dtype])
    options = config.options()
    trace = None
    if trace_meta is not None:
        ctx = TraceContext(
            trace_id=trace_meta["trace_id"],
            span_id=derive_span_id(
                trace_meta["trace_id"], trace_meta["parent_id"],
                "cell", cell.index,
            ),
        )
        trace = RequestTrace(
            ctx, name="cell", cell=cell.id, key=key, worker=worker
        )
    use_alarm = (
        cell_timeout is not None
        and cell_timeout > 0
        and hasattr(signal, "setitimer")
        and threading.current_thread() is threading.main_thread()
    )
    attempts = 0
    error: dict | None = None
    record = None
    status = "failed"
    t0 = time.monotonic()
    while attempts <= config.retries:
        attempts += 1
        prev_handler = None
        att_span = (
            trace.start_span("attempt", attempt=attempts)
            if trace is not None
            else None
        )
        try:
            if use_alarm:
                prev_handler = signal.signal(signal.SIGALRM, _raise_cell_deadline)
                signal.setitimer(signal.ITIMER_REAL, cell_timeout)
            with (
                use_trace(trace, att_span)
                if trace is not None
                else nullcontext()
            ):
                rec = run(
                    case,
                    _algorithm_for(cell, options),
                    dtype.type,
                    verify=config.verify,
                )
            if trace is not None:
                trace.end_span(att_span)
            record = rec.to_json()
            status = "ok" if attempts == 1 else "retried"
            error = None
            break
        except ReproError as exc:
            error = exc.context()
            if trace is not None:
                trace.end_span(
                    att_span, status="error", error=exc.one_line()
                )
        except Exception as exc:  # noqa: BLE001 - isolation by design
            error = {
                "kind": type(exc).__name__,
                "message": str(exc),
                "trace": traceback.format_exc(limit=3),
            }
            if trace is not None:
                trace.end_span(
                    att_span, status="error", error=type(exc).__name__
                )
        finally:
            if use_alarm:
                signal.setitimer(signal.ITIMER_REAL, 0.0)
                if prev_handler is not None:
                    signal.signal(signal.SIGALRM, prev_handler)
    line = {
        "id": cell.id,
        "key": key,
        "status": status,
        "attempts": attempts,
        "record": record,
        "error": error,
        "worker": worker,
        "t_host": round(time.monotonic() - t0, 6),
    }
    if trace is not None:
        trace.release(status=status, attempts=attempts)
        line["trace"] = {
            "trace_id": trace.trace_id,
            "span_id": trace.root.span_id,
        }
    return line


def worker_main(
    directory: str,
    worker: int,
    config_json: dict,
    work_queue,
    throttle: float = 0.0,
    operands: dict | None = None,
    cell_timeout: float | None = None,
    starve_timeout: float = DEFAULT_STARVE_TIMEOUT,
    trace_meta: dict | None = None,
) -> None:
    """Entry point of one campaign worker process.

    Pulls cell indices from ``work_queue`` until it sees ``None``.
    ``operands`` maps matrix names to shared-memory attachment
    descriptors (plus the parent-computed fingerprint): the runner
    builds every matrix exactly once and the workers map it zero-copy.
    Matrices absent from ``operands`` — or all of them, when the runner
    runs with ``REPRO_CAMPAIGN_OPERANDS=rebuild`` — are rebuilt from
    the deterministic seeded generators as before, on demand and
    memoised per worker.  ``throttle`` is a runtime test hook (a sleep
    after each cell so kill/resume tests can interrupt a campaign
    deterministically); it never enters the plan or artifact.

    See the module docstring for starvation, SIGTERM-drain and
    per-cell-timeout semantics.
    """
    config = CampaignConfig.from_json(config_json)
    cells = enumerate_cells(config)
    entries = {e.name: e for e in config_entries(config)}
    cases: dict[str, MatrixCase] = {}
    fingerprints: dict[str, str] = {}
    mappings = []  # SharedCSR handles kept alive while their views are
    writer = ShardWriter(directory, worker)
    draining = threading.Event()
    if threading.current_thread() is threading.main_thread():
        signal.signal(signal.SIGTERM, lambda s, f: draining.set())
    idle_since: float | None = None
    last_beat = 0.0
    try:
        while not draining.is_set():
            try:
                index = work_queue.get(timeout=_POLL_SECONDS)
            except queue_mod.Empty:
                now = time.monotonic()
                if idle_since is None:
                    idle_since = now
                    last_beat = now
                waited = now - idle_since
                if waited >= starve_timeout:
                    err = WorkerStarved(
                        f"work queue empty for {waited:.1f}s "
                        f"(starvation window {starve_timeout:.1f}s); "
                        "worker exiting so the stall is attributable",
                        stage="campaign",
                        block_id=worker,
                    )
                    writer.append(
                        {
                            "kind": "diagnostic",
                            "event": "starved",
                            "worker": worker,
                            "waited_s": round(waited, 3),
                            "error": err.context(),
                        }
                    )
                    break
                if now - last_beat >= _HEARTBEAT_SECONDS:
                    last_beat = now
                    writer.append(
                        {
                            "kind": "heartbeat",
                            "worker": worker,
                            "waited_s": round(waited, 3),
                        }
                    )
                continue
            idle_since = None
            if index is None:
                break
            cell = cells[index]
            case = cases.get(cell.matrix)
            if case is None:
                placed = (operands or {}).get(cell.matrix)
                if placed is not None:
                    from ..engine.shm import SharedCSR

                    handle = SharedCSR.attach(placed["shm"])
                    mappings.append(handle)
                    entry = entries[cell.matrix]
                    case = MatrixCase(
                        cell.matrix, handle.matrix(), family=entry.family
                    )
                    fingerprints[cell.matrix] = placed["fingerprint"]
                else:
                    entry = entries[cell.matrix]
                    case = MatrixCase(
                        entry.name, entry.build(), family=entry.family
                    )
                    fingerprints[cell.matrix] = matrix_fingerprint(
                        case.matrix
                    )
                cases[cell.matrix] = case
            line = execute_cell(
                case,
                cell,
                config,
                key=cell_key(cell, fingerprints[cell.matrix], config),
                worker=worker,
                cell_timeout=cell_timeout,
                trace_meta=trace_meta,
            )
            writer.append(line)
            if throttle:
                time.sleep(throttle)
    finally:
        if draining.is_set():
            # the in-flight cell above completed and was fsynced before
            # this marker: SIGTERM drains, it never tears a checkpoint
            writer.append(
                {"kind": "diagnostic", "event": "sigterm-drain", "worker": worker}
            )
        writer.close()
        for handle in mappings:
            handle.close()

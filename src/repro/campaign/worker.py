"""Campaign worker: executes cells pulled from a shared queue.

Each worker process rebuilds its matrices from the (deterministic,
seeded) generators, runs one cell at a time through the bench harness,
and checkpoints every outcome — success or exhausted retry budget —
to its own JSONL shard.  Failed cells are *recorded*, never dropped:
the merged artifact carries their error context so a campaign over an
adversarial collection still yields one complete, deterministic
document.
"""

from __future__ import annotations

import queue as queue_mod
import time
import traceback

from ..bench.harness import MatrixCase, run_case
from ..resilience.errors import ReproError
from .plan import (
    CampaignConfig,
    CellSpec,
    cell_key,
    config_entries,
    enumerate_cells,
    matrix_fingerprint,
)
from .store import ShardWriter

__all__ = ["execute_cell", "worker_main"]

_DTYPES = {"float32": "float32", "float64": "float64"}


def _algorithm_for(cell: CellSpec, options):
    """Resolve the cell's algorithm, honouring non-default options.

    Mirrors :meth:`ResultCache.get_or_run`: pipeline options only apply
    to AC-SpGEMM; the fixed-function baselines always run stock.
    """
    if options is None or cell.algorithm != "ac-spgemm":
        return cell.algorithm
    from ..baselines.acspgemm_adapter import AcSpgemm
    from ..baselines.registry import make_algorithm

    base = make_algorithm(cell.algorithm)
    return AcSpgemm(device=base.device, costs=base.costs, options=options)


def execute_cell(
    case: MatrixCase,
    cell: CellSpec,
    config: CampaignConfig,
    *,
    key: str,
    worker: int,
    runner=None,
) -> dict:
    """Run one cell under the per-cell retry budget.

    Returns the checkpoint line.  ``runner`` is injectable for tests;
    it defaults to :func:`repro.bench.harness.run_case`.  A cell that
    keeps failing after ``config.retries`` extra attempts is recorded
    with ``status: "failed"`` and the typed error context instead of
    being dropped.
    """
    import numpy as np

    run = runner if runner is not None else run_case
    dtype = np.dtype(_DTYPES[cell.dtype])
    options = config.options()
    attempts = 0
    error: dict | None = None
    record = None
    status = "failed"
    t0 = time.monotonic()
    while attempts <= config.retries:
        attempts += 1
        try:
            rec = run(
                case,
                _algorithm_for(cell, options),
                dtype.type,
                verify=config.verify,
            )
            record = rec.to_json()
            status = "ok" if attempts == 1 else "retried"
            error = None
            break
        except ReproError as exc:
            error = exc.context()
        except Exception as exc:  # noqa: BLE001 - isolation by design
            error = {
                "kind": type(exc).__name__,
                "message": str(exc),
                "trace": traceback.format_exc(limit=3),
            }
    return {
        "id": cell.id,
        "key": key,
        "status": status,
        "attempts": attempts,
        "record": record,
        "error": error,
        "worker": worker,
        "t_host": round(time.monotonic() - t0, 6),
    }


def worker_main(
    directory: str,
    worker: int,
    config_json: dict,
    work_queue,
    throttle: float = 0.0,
    operands: dict | None = None,
) -> None:
    """Entry point of one campaign worker process.

    Pulls cell indices from ``work_queue`` until it sees ``None``.
    ``operands`` maps matrix names to shared-memory attachment
    descriptors (plus the parent-computed fingerprint): the runner
    builds every matrix exactly once and the workers map it zero-copy.
    Matrices absent from ``operands`` — or all of them, when the runner
    runs with ``REPRO_CAMPAIGN_OPERANDS=rebuild`` — are rebuilt from
    the deterministic seeded generators as before, on demand and
    memoised per worker.  ``throttle`` is a runtime test hook (a sleep
    after each cell so kill/resume tests can interrupt a campaign
    deterministically); it never enters the plan or artifact.
    """
    config = CampaignConfig.from_json(config_json)
    cells = enumerate_cells(config)
    entries = {e.name: e for e in config_entries(config)}
    cases: dict[str, MatrixCase] = {}
    fingerprints: dict[str, str] = {}
    mappings = []  # SharedCSR handles kept alive while their views are
    writer = ShardWriter(directory, worker)
    try:
        while True:
            try:
                index = work_queue.get(timeout=60)
            except queue_mod.Empty:
                break
            if index is None:
                break
            cell = cells[index]
            case = cases.get(cell.matrix)
            if case is None:
                placed = (operands or {}).get(cell.matrix)
                if placed is not None:
                    from ..engine.shm import SharedCSR

                    handle = SharedCSR.attach(placed["shm"])
                    mappings.append(handle)
                    entry = entries[cell.matrix]
                    case = MatrixCase(
                        cell.matrix, handle.matrix(), family=entry.family
                    )
                    fingerprints[cell.matrix] = placed["fingerprint"]
                else:
                    entry = entries[cell.matrix]
                    case = MatrixCase(
                        entry.name, entry.build(), family=entry.family
                    )
                    fingerprints[cell.matrix] = matrix_fingerprint(
                        case.matrix
                    )
                cases[cell.matrix] = case
            line = execute_cell(
                case,
                cell,
                config,
                key=cell_key(cell, fingerprints[cell.matrix], config),
                worker=worker,
            )
            writer.append(line)
            if throttle:
                time.sleep(throttle)
    finally:
        writer.close()
        for handle in mappings:
            handle.close()

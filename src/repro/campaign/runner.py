"""Campaign orchestration: sharded execution, resume, merge, metrics.

The runner owns a campaign *directory*: ``plan.json`` (the pinned
configuration), ``shards/*.jsonl`` (per-worker checkpoints) and
``campaign.json`` (the merged artifact, written only once every cell
is accounted for).  Running the same plan again — after a crash, a
``SIGKILL``, or with a different worker count — resumes from the
checkpoints and converges on a byte-identical artifact.

Execution modes:

* ``workers == 1`` — inline, in-process (no spawn overhead; this is
  also the mode the determinism tests compare everything against);
* ``workers >= 2`` — N worker processes (``spawn`` start method, so
  every worker re-derives its matrices from seeds in a fresh
  interpreter) pulling cells from a shared queue.

A shared :class:`~repro.bench.harness.ResultCache` can seed the
campaign (cells already swept by the figure benches are imported as
cache hits) and receives every fresh record back on completion.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path

from ..bench.harness import MatrixCase, ResultCache, RunRecord
from ..obs.metrics import MetricsRegistry
from .plan import (
    CampaignConfig,
    CampaignError,
    CellSpec,
    cell_key,
    config_entries,
    enumerate_cells,
    matrix_fingerprint,
    plan_document,
)
from .store import (
    ShardWriter,
    load_completed,
    merged_artifact_bytes,
    write_atomic,
)
from .worker import campaign_trace_meta, execute_cell, worker_main

__all__ = ["CampaignResult", "CampaignRunner", "campaign_records"]

_POLL_SECONDS = 0.25


@dataclass
class CampaignResult:
    """Outcome of one :meth:`CampaignRunner.run` invocation."""

    config: CampaignConfig
    cells: list[CellSpec]
    completed: dict[str, dict]
    artifact_path: Path
    stats: dict = field(default_factory=dict)
    metrics: MetricsRegistry | None = None

    @property
    def failed_cells(self) -> list[str]:
        """Cell ids whose retry budget was exhausted."""
        return [
            c.id
            for c in self.cells
            if self.completed[c.id]["status"] == "failed"
        ]

    def records(self, *, allow_failed: bool = False) -> list[RunRecord]:
        """The merged sweep as :class:`RunRecord`s in plan order.

        Failed cells have no record; by default their presence raises
        so a figure bench can never silently plot a partial sweep.
        """
        failed = self.failed_cells
        if failed and not allow_failed:
            raise CampaignError(
                f"{len(failed)} cells failed (first: {failed[0]!r}); "
                "pass allow_failed=True to skip them"
            )
        out = []
        for c in self.cells:
            rec = self.completed[c.id].get("record")
            if rec is not None:
                out.append(RunRecord.from_json(rec))
        return out


class CampaignRunner:
    """Sharded, resumable executor for one campaign directory."""

    def __init__(
        self,
        directory: str | Path,
        config: CampaignConfig,
        *,
        workers: int | str = 1,
        cache_path: str | Path | None = None,
        progress=None,
        throttle: float = 0.0,
        cell_timeout: float | None = None,
    ) -> None:
        import os

        self.workers_requested = workers
        if workers == "auto":
            # resolved at invocation time, per machine — the frozen plan
            # carries no runtime knobs, so "auto" never perturbs resume
            # or the merged artifact
            workers = os.cpu_count() or 1
        if not isinstance(workers, int) or workers < 1:
            raise CampaignError("workers must be >= 1 or 'auto'")
        self.directory = Path(directory)
        self.config = config
        self.workers = workers
        self.cache_path = Path(cache_path) if cache_path else None
        self.progress = progress
        # runtime test hook (kill/resume tests); not part of the plan
        self.throttle = throttle
        # runtime knob: per-cell wallclock bound (seconds), counted
        # against the retry budget; like workers it never enters the
        # plan — but unlike workers a fired timeout *is* visible in the
        # artifact (a failed/retried cell), so it defaults off
        self.cell_timeout = cell_timeout
        self.cells = enumerate_cells(config)
        if not self.cells:
            raise CampaignError("campaign plan has no cells")

    # -- plan pinning -------------------------------------------------

    def _pin_plan(self) -> None:
        """Write ``plan.json``, or verify it matches on resume."""
        doc = plan_document(self.config)
        path = self.directory / "plan.json"
        if path.exists():
            if path.read_text().strip() != doc.strip():
                raise CampaignError(
                    f"campaign directory {self.directory} holds a "
                    "different plan; use a fresh directory or delete it"
                )
            return
        write_atomic(path, (doc + "\n").encode())

    # -- content addressing -------------------------------------------

    def _fingerprints(self) -> dict[str, str]:
        """Matrix fingerprints for every entry in the plan.

        Builds each matrix once (construction only — operands and
        product statistics stay lazy, so a fully resumed campaign
        never pays for them).  The built matrices are retained on the
        runner: sharded execution places them in shared memory so the
        worker processes map them instead of rebuilding per worker.
        """
        fps = {}
        self._built: dict[str, object] = {}
        for entry in config_entries(self.config):
            m = entry.build()
            self._built[entry.name] = m
            fps[entry.name] = matrix_fingerprint(m)
        return fps

    def _export_operands(self, remaining: list[CellSpec]):
        """Place the matrices the remaining cells touch in shared memory.

        Returns ``(metas, handles)``: the picklable per-matrix
        attachment descriptors (with the already-computed fingerprint,
        so workers skip both the rebuild and the re-hash) and the owner
        handles to release once the workers are done.  Setting
        ``REPRO_CAMPAIGN_OPERANDS=rebuild`` restores the legacy
        rebuild-from-seed path (the determinism cross-check in CI runs
        both and compares artifacts byte for byte).
        """
        import os

        if os.environ.get("REPRO_CAMPAIGN_OPERANDS", "").strip() == "rebuild":
            return None, []
        from ..engine.shm import SharedCSR

        order = self._segment_names()
        metas: dict[str, dict] = {}
        handles = []
        for name in sorted({c.matrix for c in remaining}):
            matrix = self._built.get(name)
            fp = self._last_fps.get(name)
            if matrix is None or fp is None:
                continue
            h = SharedCSR.export(matrix, name=order[name])
            handles.append(h)
            metas[name] = {"shm": h.meta(), "fingerprint": fp}
        return metas, handles

    def _segment_names(self) -> dict[str, str]:
        """Deterministic shared-memory segment name per plan matrix.

        Derived from the campaign directory and the pinned plan: a
        SIGKILLed invocation takes its resource tracker down with it and
        leaks its segments, so the *next* invocation of the same
        campaign must be able to enumerate — and reclaim — every name
        the killed one could have created.
        """
        import hashlib

        base = hashlib.blake2b(
            (str(self.directory.resolve()) + plan_document(self.config)).encode(),
            digest_size=6,
        ).hexdigest()
        names = sorted(e.name for e in config_entries(self.config))
        return {name: f"repro_{base}_{i}" for i, name in enumerate(names)}

    def _sweep_segments(self) -> int:
        """Unlink every segment this campaign could have left behind."""
        from ..engine.shm import sweep_segments

        return sweep_segments(self._segment_names().values())

    # -- cache seeding ------------------------------------------------

    def _seed_from_cache(
        self,
        expected_keys: dict[str, str],
        completed: dict[str, dict],
    ) -> int:
        """Import sweep-cache hits for cells without a checkpoint."""
        if self.cache_path is None or not self.cache_path.exists():
            return 0
        cache = ResultCache(self.cache_path)
        options = self.config.options()
        writer = None
        seeded = 0
        try:
            for cell in self.cells:
                if cell.id in completed:
                    continue
                opts = options if cell.algorithm == "ac-spgemm" else None
                k = ResultCache.key(
                    cell.matrix, cell.algorithm, cell.dtype, opts
                )
                rec = cache._data.get(k)
                if rec is None:
                    continue
                # indistinguishable from a fresh first-attempt success:
                # a deterministic cell that once succeeded always would,
                # so seeding must not perturb the merged artifact
                line = {
                    "id": cell.id,
                    "key": expected_keys[cell.id],
                    "status": "ok",
                    "attempts": 1,
                    "record": rec,
                    "error": None,
                    "worker": "cache",
                    "t_host": 0.0,
                }
                if writer is None:
                    writer = ShardWriter(self.directory, "seed")
                writer.append(line)
                completed[cell.id] = line
                seeded += 1
        finally:
            if writer is not None:
                writer.close()
        return seeded

    # -- execution ----------------------------------------------------

    def _run_inline(self, remaining: list[CellSpec]) -> None:
        entries = {e.name: e for e in config_entries(self.config)}
        cases: dict[str, MatrixCase] = {}
        fps: dict[str, str] = {}
        writer = ShardWriter(self.directory, 0)
        try:
            for i, cell in enumerate(remaining):
                case = cases.get(cell.matrix)
                if case is None:
                    entry = entries[cell.matrix]
                    case = MatrixCase(
                        entry.name, entry.build(), family=entry.family
                    )
                    cases[cell.matrix] = case
                    fps[cell.matrix] = matrix_fingerprint(case.matrix)
                line = execute_cell(
                    case,
                    cell,
                    self.config,
                    key=cell_key(cell, fps[cell.matrix], self.config),
                    worker=0,
                    cell_timeout=self.cell_timeout,
                    trace_meta=campaign_trace_meta(self.config),
                )
                writer.append(line)
                if self.throttle:
                    time.sleep(self.throttle)
                if self.progress is not None:
                    self.progress(i + 1, len(remaining))
        finally:
            writer.close()

    def _run_processes(self, remaining: list[CellSpec]) -> None:
        import multiprocessing as mp

        ctx = mp.get_context("spawn")
        n = min(self.workers, len(remaining))
        work = ctx.Queue()
        for cell in remaining:
            work.put(cell.index)
        for _ in range(n):
            work.put(None)
        operand_metas, operand_handles = self._export_operands(remaining)
        procs = [
            ctx.Process(
                target=worker_main,
                args=(
                    str(self.directory),
                    w,
                    self.config.to_json(),
                    work,
                    self.throttle,
                    operand_metas,
                    self.cell_timeout,
                ),
                kwargs={"trace_meta": campaign_trace_meta(self.config)},
            )
            for w in range(n)
        ]
        for p in procs:
            p.start()
        try:
            while any(p.is_alive() for p in procs):
                time.sleep(_POLL_SECONDS)
                if self.progress is not None:
                    done = sum(
                        path.read_text(encoding="utf-8").count("\n")
                        for path in (self.directory / "shards").glob(
                            "*.jsonl"
                        )
                    )
                    self.progress(done, len(self.cells))
            for p in procs:
                p.join()
        except BaseException:
            # SIGTERM asks workers to drain: the in-flight cell is
            # finished and fsynced, so give them a bounded grace period
            # before propagating
            for p in procs:
                if p.is_alive():
                    p.terminate()
            for p in procs:
                p.join(timeout=10)
            raise
        finally:
            # the owner unlinks unconditionally, and the sweep also
            # reclaims segments a previous SIGKILLed invocation leaked
            # for matrices this one never re-exported
            for h in operand_handles:
                h.close()
            self._sweep_segments()
        bad = [p.exitcode for p in procs if p.exitcode != 0]
        if bad:
            raise CampaignError(
                f"{len(bad)} campaign workers exited abnormally "
                f"(exit codes {bad}); rerun to resume from checkpoints"
            )

    # -- the whole dance ----------------------------------------------

    def run(self) -> CampaignResult:
        """Execute (or resume) the campaign and merge the artifact."""
        t_start = time.monotonic()
        self.directory.mkdir(parents=True, exist_ok=True)
        self._pin_plan()
        fps = self._fingerprints()
        self._last_fps = fps
        expected_keys = {
            c.id: cell_key(c, fps[c.matrix], self.config) for c in self.cells
        }
        completed = load_completed(self.directory, expected_keys)
        resumed = len(completed)
        seeded = self._seed_from_cache(expected_keys, completed)
        remaining = [c for c in self.cells if c.id not in completed]
        if remaining:
            if self.workers == 1:
                self._run_inline(remaining)
            else:
                self._run_processes(remaining)
            completed = load_completed(self.directory, expected_keys)
        executed = len(completed) - resumed - seeded
        wall = time.monotonic() - t_start
        artifact = merged_artifact_bytes(self.config, self.cells, completed)
        artifact_path = write_atomic(self.directory / "campaign.json", artifact)
        self._fold_into_cache(completed)
        stats = {
            "cells": len(self.cells),
            "resumed": resumed,
            "seeded": seeded,
            "executed": executed,
            "wall_seconds": wall,
            "workers": self.workers,
            "workers_requested": self.workers_requested,
        }
        metrics = self._build_metrics(completed, stats)
        return CampaignResult(
            config=self.config,
            cells=self.cells,
            completed=completed,
            artifact_path=artifact_path,
            stats=stats,
            metrics=metrics,
        )

    def _fold_into_cache(self, completed: dict[str, dict]) -> None:
        """Write every successful record back into the shared cache."""
        if self.cache_path is None:
            return
        cache = ResultCache(self.cache_path)
        options = self.config.options()
        dirty = False
        for cell in self.cells:
            line = completed[cell.id]
            if line.get("record") is None:
                continue
            opts = options if cell.algorithm == "ac-spgemm" else None
            k = ResultCache.key(cell.matrix, cell.algorithm, cell.dtype, opts)
            if cache._data.get(k) != line["record"]:
                cache._data[k] = line["record"]
                dirty = True
        if dirty:
            cache.save()

    def _build_metrics(
        self, completed: dict[str, dict], stats: dict
    ) -> MetricsRegistry:
        """Campaign throughput/caching/utilization metrics."""
        reg = MetricsRegistry(
            const_labels={"suite": self.config.suite}
        )
        for line in completed.values():
            reg.inc(
                "repro_campaign_cells_total",
                1,
                help="Merged campaign cells by outcome.",
                status=line["status"],
            )
        reg.inc(
            "repro_campaign_resumed_cells_total",
            stats["resumed"],
            help="Cells served from shard checkpoints on resume.",
        )
        reg.inc(
            "repro_campaign_seeded_cells_total",
            stats["seeded"],
            help="Cells imported from the shared sweep cache.",
        )
        reg.inc(
            "repro_campaign_executed_cells_total",
            stats["executed"],
            help="Cells actually executed by this invocation.",
        )
        total = stats["cells"]
        hits = stats["resumed"] + stats["seeded"]
        reg.set(
            "repro_campaign_cache_hit_ratio",
            round(hits / total, 6) if total else 0.0,
            help="Fraction of cells answered without execution.",
        )
        wall = stats["wall_seconds"]
        reg.set(
            "repro_campaign_wall_seconds",
            round(wall, 6),
            help="Wallclock of this campaign invocation.",
        )
        reg.set(
            "repro_campaign_cells_per_second",
            round(stats["executed"] / wall, 6) if wall > 0 else 0.0,
            help="Executed-cell throughput of this invocation.",
        )
        reg.set(
            "repro_campaign_workers",
            stats["workers"],
            help="Resolved worker processes of this invocation "
            "(the count 'auto' expanded to, not the request).",
        )
        busy: dict[str, float] = {}
        per_matrix: dict[str, float] = {}
        for line in completed.values():
            w = str(line.get("worker", "?"))
            busy[w] = busy.get(w, 0.0) + float(line.get("t_host", 0.0))
            m = line["id"].split("|", 1)[0]
            per_matrix[m] = per_matrix.get(m, 0.0) + float(
                line.get("t_host", 0.0)
            )
        for w in sorted(busy):
            if w == "cache":
                continue
            reg.set(
                "repro_campaign_worker_busy_seconds",
                round(busy[w], 6),
                help="Summed per-cell host seconds per worker.",
                worker=w,
            )
            if wall > 0:
                reg.set(
                    "repro_campaign_worker_utilization",
                    round(min(busy[w] / wall, 1.0), 6),
                    help="Busy fraction of this invocation's wallclock.",
                    worker=w,
                )
        for m in sorted(per_matrix):
            reg.inc(
                "repro_campaign_matrix_seconds_total",
                round(per_matrix[m], 6),
                help="Summed host seconds per matrix (all cells).",
                matrix=m,
            )
        return reg


def campaign_records(
    directory: str | Path,
    config: CampaignConfig,
    *,
    workers: int = 1,
    cache_path: str | Path | None = None,
    allow_failed: bool = False,
) -> list[RunRecord]:
    """Run (or resume) a campaign and return its records in plan order.

    This is the bench entry point: the figure benches hand it the
    shared sweep cache so a warm sweep is a pure cache import and a
    cold one is sharded across workers.
    """
    result = CampaignRunner(
        directory, config, workers=workers, cache_path=cache_path
    ).run()
    return result.records(allow_failed=allow_failed)

"""Sharded, resumable sweep campaigns over the matrix collections.

The paper's evaluation is a ~1800-matrix sweep of six algorithms in two
precisions; this package turns that cross product into a *campaign*: a
plan of content-addressed cells, executed by N worker processes, each
checkpointing finished cells to its own JSONL shard.  A killed campaign
resumes from the checkpoints, and the merged artifact is byte-identical
no matter how many workers (or how many interruptions) produced it.

See ``docs/ARCHITECTURE.md`` §7 ("Campaign runner") for the design.
"""

from .plan import (
    SUITES,
    CampaignConfig,
    CampaignError,
    CellSpec,
    cell_key,
    config_entries,
    enumerate_cells,
    matrix_fingerprint,
    tiny_entries,
)
from .runner import CampaignResult, CampaignRunner, campaign_records
from .store import (
    ShardWriter,
    load_completed,
    merged_artifact_bytes,
    read_shard_lines,
    write_atomic,
)
from .worker import execute_cell, worker_main

__all__ = [
    "SUITES",
    "CampaignConfig",
    "CampaignError",
    "CampaignResult",
    "CampaignRunner",
    "CellSpec",
    "ShardWriter",
    "campaign_records",
    "cell_key",
    "config_entries",
    "enumerate_cells",
    "execute_cell",
    "load_completed",
    "matrix_fingerprint",
    "merged_artifact_bytes",
    "read_shard_lines",
    "tiny_entries",
    "worker_main",
]

"""Campaign plans: configuration, cell enumeration and content keys.

A campaign is the cross product (matrix x algorithm x dtype) over a
named matrix collection.  The plan layer is deliberately cheap: it
enumerates :class:`CellSpec` descriptors without building any matrix,
so a resumed campaign whose cells are all checkpointed never pays for
operand construction.  Cells are *content-addressed*: the cell key
hashes the matrix fingerprint (the actual CSR bytes), the pipeline
options fingerprint and the harness ``CACHE_VERSION``, so a checkpoint
written by an older generator or option set can never be mistaken for
a current result.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, replace

import numpy as np

from ..baselines.registry import BACKEND_ALGORITHMS, GPU_ALGORITHMS
from ..bench.harness import CACHE_VERSION
from ..matrices import generators as g
from ..matrices.collection import NAMED_COLLECTION
from ..matrices.suite import SuiteEntry, suite_entries
from ..resilience.errors import ReproError

__all__ = [
    "CampaignError",
    "CampaignConfig",
    "CellSpec",
    "SUITES",
    "config_entries",
    "enumerate_cells",
    "matrix_fingerprint",
    "cell_key",
    "tiny_entries",
]

#: selectable matrix collections; "tiny" is the fast CI/resume-test set
SUITES = ("tiny", "suite", "named", "full")


class CampaignError(ReproError):
    """A campaign-level failure (bad plan, conflicting checkpoint, ...)."""


def tiny_entries() -> list[SuiteEntry]:
    """A six-matrix suite small enough for smoke runs and kill tests.

    Spans the generator families (uniform, stencil, power law, road,
    banded, long-row) at sizes where one full line-up sweep takes
    seconds, not minutes.
    """
    return [
        SuiteEntry("tiny-uniform", "uniform", lambda: g.random_uniform(300, 300, 3, seed=71001)),
        SuiteEntry("tiny-grid2d", "stencil", lambda: g.stencil_2d(18, seed=71002)),
        SuiteEntry("tiny-powerlaw", "power-law", lambda: g.power_law(400, 3.0, max_row_len=60, seed=71003)),
        SuiteEntry("tiny-road", "road", lambda: g.road_network(700, seed=71004)),
        SuiteEntry("tiny-banded", "fem-banded", lambda: g.banded(260, 2, seed=71005, fill=0.97)),
        SuiteEntry("tiny-longrow", "long-row", lambda: g.long_row_matrix(500, 2.5, n_long_rows=1, long_row_len=120, seed=71006)),
    ]


@dataclass(frozen=True)
class CampaignConfig:
    """Everything that determines *what* a campaign computes.

    Runtime knobs that cannot change the merged artifact (worker count,
    directories, metrics outputs) are deliberately absent, so one
    serialized config describes the same artifact regardless of how the
    sweep is executed.
    """

    suite: str = "suite"
    limit: int | None = None
    algorithms: tuple[str, ...] = tuple(GPU_ALGORITHMS)
    dtypes: tuple[str, ...] = ("float64",)
    engine: str = "reference"
    estimator: str = "uniform"
    sanitize: bool = False
    fallback: bool = False
    verify: bool = False
    retries: int = 1

    def __post_init__(self) -> None:
        if self.suite not in SUITES:
            raise CampaignError(
                f"unknown suite {self.suite!r}; expected one of {SUITES}"
            )
        known = set(GPU_ALGORITHMS) | set(BACKEND_ALGORITHMS)
        unknown = set(self.algorithms) - known
        if unknown:
            raise CampaignError(f"unknown algorithms {sorted(unknown)}")
        bad = set(self.dtypes) - {"float32", "float64"}
        if bad:
            raise CampaignError(f"unknown dtypes {sorted(bad)}")
        if self.estimator not in ("uniform", "sampling"):
            raise CampaignError(f"unknown estimator {self.estimator!r}")
        if self.retries < 0:
            raise CampaignError("retries must be non-negative")

    def options(self):
        """The :class:`AcSpgemmOptions` for AC-SpGEMM cells.

        ``None`` when every knob is at its default, mirroring the bench
        harness convention (default runs share default cache keys).
        """
        if (
            self.engine == "reference"
            and self.estimator == "uniform"
            and not self.sanitize
            and not self.fallback
        ):
            return None
        from ..core.options import AcSpgemmOptions

        return AcSpgemmOptions(
            engine=self.engine,
            estimator=self.estimator,
            sanitize=self.sanitize,
            on_failure="fallback" if self.fallback else "raise",
        )

    def options_fingerprint(self) -> str:
        """Stable digest of the pipeline options ("default" when None)."""
        opts = self.options()
        return "default" if opts is None else opts.cache_fingerprint()

    def to_json(self) -> dict:
        """Deterministic JSON form (tuples become lists)."""
        d = asdict(self)
        d["algorithms"] = list(self.algorithms)
        d["dtypes"] = list(self.dtypes)
        return d

    @classmethod
    def from_json(cls, d: dict) -> "CampaignConfig":
        """Inverse of :meth:`to_json`."""
        d = dict(d)
        d["algorithms"] = tuple(d.get("algorithms", GPU_ALGORITHMS))
        d["dtypes"] = tuple(d.get("dtypes", ("float64",)))
        return cls(**d)

    def with_(self, **kwargs) -> "CampaignConfig":
        """Copy with replaced fields."""
        return replace(self, **kwargs)


@dataclass(frozen=True)
class CellSpec:
    """One sweep cell, identified before any matrix is built."""

    index: int  # position in the deterministic plan order
    matrix: str
    algorithm: str
    dtype: str

    @property
    def id(self) -> str:
        """Human-readable cell identity (not content-addressed)."""
        return f"{self.matrix}|{self.algorithm}|{self.dtype}"


def config_entries(config: CampaignConfig) -> list:
    """Lazy matrix entries (objects with ``name``/``family``/``build()``)
    of the configured collection, in deterministic order."""
    if config.suite == "tiny":
        entries: list = tiny_entries()
    elif config.suite == "suite":
        entries = list(suite_entries())
    elif config.suite == "named":
        entries = list(NAMED_COLLECTION)
    else:  # full: the complete figure-9..12 population
        entries = list(suite_entries()) + list(NAMED_COLLECTION)
    if config.limit is not None:
        entries = entries[: config.limit]
    return entries


def enumerate_cells(config: CampaignConfig) -> list[CellSpec]:
    """Every cell of the campaign, in the canonical sweep order
    (matrices outer, then dtypes, then algorithms — identical to the
    serial :func:`repro.bench.sweep` nesting)."""
    cells = []
    for entry in config_entries(config):
        for dtype in config.dtypes:
            for alg in config.algorithms:
                cells.append(
                    CellSpec(
                        index=len(cells),
                        matrix=entry.name,
                        algorithm=alg,
                        dtype=dtype,
                    )
                )
    return cells


def matrix_fingerprint(matrix) -> str:
    """Content hash of a CSR matrix (shape + structure + values)."""
    h = hashlib.sha1()
    h.update(f"{matrix.rows}x{matrix.cols}".encode())
    h.update(np.ascontiguousarray(matrix.row_ptr).tobytes())
    h.update(np.ascontiguousarray(matrix.col_idx).tobytes())
    h.update(np.ascontiguousarray(matrix.values).tobytes())
    return h.hexdigest()[:16]


def cell_key(
    cell: CellSpec, matrix_fp: str, config: CampaignConfig
) -> str:
    """Content address of one cell's result.

    Hashes the matrix fingerprint, the options/engine fingerprint, the
    harness ``CACHE_VERSION`` and the cell coordinates, so checkpoints
    survive only as long as they would be reproduced bit-identically.
    """
    payload = "|".join(
        (
            matrix_fp,
            config.options_fingerprint(),
            str(CACHE_VERSION),
            cell.algorithm,
            cell.dtype,
            "verify" if config.verify else "noverify",
        )
    )
    return hashlib.sha1(payload.encode()).hexdigest()[:20]


def plan_document(config: CampaignConfig) -> str:
    """The serialized plan written to ``plan.json`` (byte-stable)."""
    return json.dumps(
        {
            "format": 1,
            "cache_version": CACHE_VERSION,
            "config": config.to_json(),
        },
        sort_keys=True,
        separators=(",", ":"),
    )

"""Unified observability layer: spans, metrics and profile exports.

Three pieces, all driven by the simulated device clock so every export
is engine-comparable and byte-deterministic:

* :mod:`repro.obs.span` — the nested host-side span tree the driver
  records for every run (``acspgemm`` → ``setup`` / ``estimate`` /
  ``esc`` / ``merge`` / ``output``);
* :mod:`repro.obs.metrics` — :class:`MetricsRegistry`, aggregating
  traffic counters, per-stage cycles, restart/degradation counts and
  pool high-water marks into JSON and Prometheus text exports;
* :mod:`repro.obs.export` / :mod:`repro.obs.profile` — Perfetto JSON
  emission + validation and the ``repro profile`` workload;
* :mod:`repro.obs.device` / :mod:`repro.obs.analyze` — the opt-in
  device-level trace (per-SM/per-block timelines, counter attribution)
  and the ``repro analyze`` paper-figure reports built from it;
* :mod:`repro.obs.trace` / :mod:`repro.obs.flight` — the cross-process
  request-tracing layer (deterministic ids, ``traceparent``
  propagation) and the adaptive-selector flight recorder.
"""

from .device import BlockEvent, BlockMeta, DeviceRecord, DeviceTrace
from .export import (
    parse_prometheus_text,
    perfetto_payload,
    routing_events,
    sanitize_label_name,
    sanitize_metric_name,
    span_events,
    validate_perfetto,
    validate_perfetto_file,
    write_perfetto,
)
from .flight import (
    FlightRecorder,
    get_flight_recorder,
    install_flight_recorder,
    read_flight_events,
)
from .metrics import DEFAULT_LATENCY_BUCKETS_MS, MetricsRegistry
from .span import Span, SpanEvent, SpanRecorder
from .trace import (
    RequestTrace,
    TraceContext,
    TraceSpan,
    TraceStore,
    current_span,
    current_trace,
    current_trace_attrs,
    derive_span_id,
    derive_trace_id,
    payload_fingerprint,
    trace_note,
    use_trace,
)


def __getattr__(name):
    # lazy: repro.obs.profile imports the driver, which imports
    # repro.obs.span — importing it eagerly here would be circular
    if name in ("ProfileReport", "profile_run"):
        from . import profile

        return getattr(profile, name)
    if name in ("AnalysisReport", "analyze_result", "render_html"):
        from . import analyze

        return getattr(analyze, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

__all__ = [
    "Span",
    "SpanEvent",
    "SpanRecorder",
    "MetricsRegistry",
    "ProfileReport",
    "profile_run",
    "BlockEvent",
    "BlockMeta",
    "DeviceRecord",
    "DeviceTrace",
    "AnalysisReport",
    "analyze_result",
    "render_html",
    "span_events",
    "parse_prometheus_text",
    "sanitize_label_name",
    "sanitize_metric_name",
    "perfetto_payload",
    "routing_events",
    "write_perfetto",
    "validate_perfetto",
    "validate_perfetto_file",
    "DEFAULT_LATENCY_BUCKETS_MS",
    "RequestTrace",
    "TraceContext",
    "TraceSpan",
    "TraceStore",
    "current_span",
    "current_trace",
    "current_trace_attrs",
    "derive_span_id",
    "derive_trace_id",
    "payload_fingerprint",
    "trace_note",
    "use_trace",
    "FlightRecorder",
    "get_flight_recorder",
    "install_flight_recorder",
    "read_flight_events",
]

"""Unified observability layer: spans, metrics and profile exports.

Three pieces, all driven by the simulated device clock so every export
is engine-comparable and byte-deterministic:

* :mod:`repro.obs.span` — the nested host-side span tree the driver
  records for every run (``acspgemm`` → ``setup`` / ``estimate`` /
  ``esc`` / ``merge`` / ``output``);
* :mod:`repro.obs.metrics` — :class:`MetricsRegistry`, aggregating
  traffic counters, per-stage cycles, restart/degradation counts and
  pool high-water marks into JSON and Prometheus text exports;
* :mod:`repro.obs.export` / :mod:`repro.obs.profile` — Perfetto JSON
  emission + validation and the ``repro profile`` workload;
* :mod:`repro.obs.device` / :mod:`repro.obs.analyze` — the opt-in
  device-level trace (per-SM/per-block timelines, counter attribution)
  and the ``repro analyze`` paper-figure reports built from it.
"""

from .device import BlockEvent, BlockMeta, DeviceRecord, DeviceTrace
from .export import (
    parse_prometheus_text,
    perfetto_payload,
    sanitize_label_name,
    sanitize_metric_name,
    span_events,
    validate_perfetto,
    validate_perfetto_file,
    write_perfetto,
)
from .metrics import MetricsRegistry
from .span import Span, SpanEvent, SpanRecorder


def __getattr__(name):
    # lazy: repro.obs.profile imports the driver, which imports
    # repro.obs.span — importing it eagerly here would be circular
    if name in ("ProfileReport", "profile_run"):
        from . import profile

        return getattr(profile, name)
    if name in ("AnalysisReport", "analyze_result", "render_html"):
        from . import analyze

        return getattr(analyze, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

__all__ = [
    "Span",
    "SpanEvent",
    "SpanRecorder",
    "MetricsRegistry",
    "ProfileReport",
    "profile_run",
    "BlockEvent",
    "BlockMeta",
    "DeviceRecord",
    "DeviceTrace",
    "AnalysisReport",
    "analyze_result",
    "render_html",
    "span_events",
    "parse_prometheus_text",
    "sanitize_label_name",
    "sanitize_metric_name",
    "perfetto_payload",
    "write_perfetto",
    "validate_perfetto",
    "validate_perfetto_file",
]

"""Structured spans on the simulated device clock.

A :class:`Span` is one named interval of the pipeline (``glb``,
``esc.round``, ``output.copy``, ...) with attributes, point events and
child spans.  The :class:`SpanRecorder` owns a monotonic clock measured
in simulated cycles and a stack of open spans, so the driver can nest
stages naturally::

    spans = SpanRecorder(clock_ghz=1.582)
    spans.start("acspgemm", engine="reference")
    spans.leaf("glb", 1234.0, stage="GLB")
    with spans.span("esc", stage="ESC"):
        spans.leaf("esc.round", 5678.0, round=0)
    root = spans.finish()

Because the driver — not the engines — emits every span, the span tree
is *engine-comparable by construction*: for a fixed input and seed all
execution engines produce the identical ordered tree (asserted in
``tests/test_obs.py``).  Resilience events (restarts, block aborts,
degradation) are recorded as point events on the span they occur in,
unifying the old ad-hoc trace points into the same structure.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator

__all__ = [
    "HostSpanProfile",
    "Span",
    "SpanEvent",
    "SpanRecorder",
    "host_span_profile",
]


@dataclass(frozen=True)
class SpanEvent:
    """An instantaneous event attributed to a span (restart, abort...)."""

    label: str
    cycle: float
    detail: str = ""

    def to_dict(self) -> dict:
        return {"label": self.label, "cycle": self.cycle, "detail": self.detail}


@dataclass
class Span:
    """One named interval on the simulated device timeline."""

    name: str
    start_cycle: float
    end_cycle: float | None = None
    attrs: dict = field(default_factory=dict)
    events: list[SpanEvent] = field(default_factory=list)
    children: list["Span"] = field(default_factory=list)

    @property
    def duration(self) -> float:
        """Span length in cycles (0.0 while still open)."""
        if self.end_cycle is None:
            return 0.0
        return self.end_cycle - self.start_cycle

    def walk(self) -> Iterator["Span"]:
        """Depth-first pre-order iteration over the subtree."""
        yield self
        for child in self.children:
            yield from child.walk()

    def find(self, name: str) -> "Span | None":
        """First span named ``name`` in pre-order, or None."""
        for s in self.walk():
            if s.name == name:
                return s
        return None

    def cycle_sum(self, name: str) -> float:
        """Total duration of every span named ``name`` in the subtree."""
        return sum(s.duration for s in self.walk() if s.name == name)

    def to_dict(self) -> dict:
        """Deterministic JSON-ready form (attrs sorted by key)."""
        return {
            "name": self.name,
            "start_cycle": self.start_cycle,
            "end_cycle": self.end_cycle,
            "attrs": {k: self.attrs[k] for k in sorted(self.attrs)},
            "events": [e.to_dict() for e in self.events],
            "children": [c.to_dict() for c in self.children],
        }


class HostSpanProfile:
    """Aggregated host-side *self* time per span name.

    Collected out of band — the span tree itself carries only simulated
    cycles and stays bit-identical across engines — by crediting the
    wall time between consecutive recorder transitions to a span name.
    The driver emits ``leaf`` spans immediately *after* the host work
    they describe and opens ``span(...)`` contexts immediately before
    theirs, so the elapsed time preceding each ``start`` is credited to
    the span being started, and the time preceding each ``finish`` to
    the span being closed.  Calls are counted once per ``start``.
    """

    __slots__ = ("totals", "_mark")

    def __init__(self) -> None:
        self.totals: dict[str, list] = {}  # name -> [calls, host_seconds]
        self._mark = time.perf_counter()

    def _credit(self, name: str, *, call: bool) -> None:
        t = time.perf_counter()
        ent = self.totals.get(name)
        if ent is None:
            ent = self.totals[name] = [0, 0.0]
        ent[0] += 1 if call else 0
        ent[1] += t - self._mark
        self._mark = t

    def table(self) -> dict[str, dict]:
        """``{span_name: {"calls": n, "host_seconds": s}}`` snapshot."""
        return {
            name: {"calls": c, "host_seconds": s}
            for name, (c, s) in self.totals.items()
        }


_HOST_PROFILE: HostSpanProfile | None = None


@contextmanager
def host_span_profile():
    """Attribute host wall time to span names for the enclosed scope.

    Yields the :class:`HostSpanProfile` accumulating across every
    :class:`SpanRecorder` used inside the scope (a bench can aggregate
    over repeated runs).  Purely additive: the span trees produced
    inside the scope are identical to those produced outside it.
    """
    global _HOST_PROFILE
    if _HOST_PROFILE is not None:
        raise RuntimeError("host span profiling is already active")
    prof = HostSpanProfile()
    _HOST_PROFILE = prof
    try:
        yield prof
    finally:
        _HOST_PROFILE = None


class SpanRecorder:
    """Builds one span tree while advancing a simulated-cycle clock."""

    def __init__(self, clock_ghz: float = 1.582) -> None:
        self.clock_ghz = clock_ghz
        self.root: Span | None = None
        self._stack: list[Span] = []
        self._clock = 0.0

    @property
    def now(self) -> float:
        """Current device clock in cycles."""
        return self._clock

    @property
    def current(self) -> Span | None:
        """The innermost open span."""
        return self._stack[-1] if self._stack else None

    # -- recording ---------------------------------------------------

    def start(self, name: str, **attrs) -> Span:
        """Open a span at the current clock and push it on the stack."""
        if _HOST_PROFILE is not None:
            _HOST_PROFILE._credit(name, call=True)
        span = Span(name=name, start_cycle=self._clock, attrs=dict(attrs))
        if self._stack:
            self._stack[-1].children.append(span)
        elif self.root is None:
            self.root = span
        else:
            raise RuntimeError("span tree already closed; one root per run")
        self._stack.append(span)
        return span

    def finish(self, **attrs) -> Span:
        """Close the innermost open span at the current clock."""
        if not self._stack:
            raise RuntimeError("no open span to finish")
        if _HOST_PROFILE is not None:
            _HOST_PROFILE._credit(self._stack[-1].name, call=False)
        span = self._stack.pop()
        span.end_cycle = self._clock
        span.attrs.update(attrs)
        return span

    @contextmanager
    def span(self, name: str, **attrs):
        """Scoped ``start``/``finish`` pair; yields the open span.

        A span unwound by an exception is tagged ``aborted=True`` so a
        degraded run's partial pipeline stays visible in the tree.
        """
        span = self.start(name, **attrs)
        try:
            yield span
        except BaseException:
            if self._stack and self._stack[-1] is span:
                self.finish(aborted=True)
            raise
        finally:
            if self._stack and self._stack[-1] is span:
                self.finish()

    def advance(self, cycles: float) -> None:
        """Move the clock forward inside the current span."""
        if cycles < 0:
            raise ValueError("cannot advance the clock backwards")
        self._clock += cycles

    def leaf(self, name: str, cycles: float, **attrs) -> Span:
        """A closed child span of ``cycles`` length, advancing the clock."""
        span = self.start(name, **attrs)
        self.advance(cycles)
        return self.finish()

    def event(self, label: str, detail: str = "") -> SpanEvent:
        """Record an instantaneous event on the innermost open span."""
        if not self._stack:
            raise RuntimeError("no open span to attach the event to")
        ev = SpanEvent(label=label, cycle=self._clock, detail=detail)
        self._stack[-1].events.append(ev)
        return ev

    def abort(self, reason: str = "", **attrs) -> None:
        """Close every open span except the root (failure unwinding).

        Each closed span is tagged ``aborted=True`` so a degraded run's
        partial pipeline remains visible — and engine-comparable, since
        injected faults fire at driver chokepoints before engine work.
        Extra ``attrs`` (trace ids, breaker state) land on every span
        closed by the unwind, keeping aborted traces attributable.
        """
        while len(self._stack) > 1:
            self.finish(aborted=True, **attrs)
        if self._stack:
            if attrs:
                self._stack[-1].attrs.update(attrs)
                # spans the exception already unwound on its way here
                # (the ``span()`` context manager tags those itself)
                # get the same attribution
                for span in self.root.walk():
                    if span.attrs.get("aborted"):
                        for key, value in attrs.items():
                            span.attrs.setdefault(key, value)
            if reason:
                self._stack[-1].events.append(
                    SpanEvent(label="abort", cycle=self._clock, detail=reason)
                )

    def close(self, **attrs) -> Span:
        """Close every open span (root last) and return the root."""
        if self.root is None:
            raise RuntimeError("no spans were recorded")
        while self._stack:
            self.finish()
        self.root.attrs.update(attrs)
        return self.root

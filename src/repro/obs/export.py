"""Exposition-format exports of the unified observability data:
Perfetto / chrome://tracing JSON plus Prometheus text-format helpers.

One payload merges two process rows:

* **pid 1 — simulated device**: the per-stage kernel timeline of
  :class:`~repro.bench.trace.TraceRecorder` (one thread row per stage,
  instant events on tid 0);
* **pid 2 — pipeline spans**: the driver's nested host-side span tree
  (:mod:`repro.obs.span`) as ``X`` events on a single track — Perfetto
  nests contained slices automatically — plus span events (restarts,
  aborts, degradation) as instant events.

:func:`validate_perfetto` is the schema check used by the tests and CI:
it verifies the JSON object model and that ``X`` slices on one
``(pid, tid)`` row are either disjoint or properly nested — the exact
property the old zero-duration clamp in ``to_chrome_trace`` violated.
"""

from __future__ import annotations

import json
import re
from pathlib import Path

from .span import Span

__all__ = [
    "span_events",
    "perfetto_payload",
    "summa_perfetto_payload",
    "write_perfetto",
    "validate_perfetto",
    "validate_perfetto_file",
    "sanitize_metric_name",
    "sanitize_label_name",
    "parse_prometheus_text",
]

# ------------------------------------------------- Prometheus text format
#
# Metric names must match [a-zA-Z_:][a-zA-Z0-9_:]* and label names
# [a-zA-Z_][a-zA-Z0-9_]* (exposition format 0.0.4).  Names derived from
# matrix identifiers ("ca-AstroPh", "webbase-1M", "uniform-a1.5-0")
# contain '-' and '.' and would produce an unscrapable export, so every
# name is sanitized at registration time; label *values* may carry any
# character and are escaped instead.

_METRIC_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_NAME_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")
_SAMPLE_LINE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>.*?)\})?"
    r" (?P<value>\S+)"
    # OpenMetrics-style exemplar suffix on histogram bucket lines:
    # ` # {trace_id="..."} 4.2 [timestamp]`
    r"(?: # \{(?P<exemplar>[^}]*)\} (?P<exemplar_value>\S+)"
    r"(?: (?P<exemplar_ts>\S+))?)?$"
)
_LABEL_PAIR_RE = re.compile(
    r'(?P<name>[a-zA-Z_][a-zA-Z0-9_]*)="(?P<value>(?:\\.|[^"\\])*)"'
)


def sanitize_metric_name(name: str) -> str:
    """Coerce ``name`` into a legal Prometheus metric name.

    Every illegal character becomes ``_``; a leading digit gains a ``_``
    prefix.  Legal names pass through unchanged, so the function is
    idempotent.
    """
    name = str(name)
    if _METRIC_NAME_RE.match(name):
        return name
    name = re.sub(r"[^a-zA-Z0-9_:]", "_", name) or "_"
    if name[0].isdigit():
        name = "_" + name
    return name


def sanitize_label_name(name: str) -> str:
    """Coerce ``name`` into a legal Prometheus label name (idempotent)."""
    name = str(name)
    if _LABEL_NAME_RE.match(name):
        return name
    name = re.sub(r"[^a-zA-Z0-9_]", "_", name) or "_"
    if name[0].isdigit():
        name = "_" + name
    return name


def _unescape_label(value: str) -> str:
    return (
        value.replace("\\n", "\n").replace('\\"', '"').replace("\\\\", "\\")
    )


def parse_prometheus_text(text: str) -> dict:
    """Parse exposition format 0.0.4 back into a structured document.

    Returns ``{"samples": {name: [(labels_dict, value), ...]},
    "types": {name: kind}, "help": {name: help},
    "exemplars": {name: [(labels, exemplar_labels, value), ...]}}``.
    Used by the round-trip tests to prove our exports are scrapable;
    raises ``ValueError`` on any line a Prometheus scraper would
    reject.  OpenMetrics-style exemplar suffixes on histogram bucket
    lines are parsed (and validated) rather than rejected.
    """
    samples: dict[str, list] = {}
    types: dict[str, str] = {}
    helps: dict[str, str] = {}
    exemplars: dict[str, list] = {}
    for lineno, line in enumerate(text.splitlines(), 1):
        if not line.strip():
            continue
        if line.startswith("# HELP "):
            _, _, rest = line.partition("# HELP ")
            name, _, doc = rest.partition(" ")
            if not _METRIC_NAME_RE.match(name):
                raise ValueError(f"line {lineno}: bad HELP name {name!r}")
            helps[name] = doc
            continue
        if line.startswith("# TYPE "):
            _, _, rest = line.partition("# TYPE ")
            name, _, kind = rest.partition(" ")
            if not _METRIC_NAME_RE.match(name):
                raise ValueError(f"line {lineno}: bad TYPE name {name!r}")
            if kind not in ("counter", "gauge", "histogram", "summary", "untyped"):
                raise ValueError(f"line {lineno}: bad TYPE kind {kind!r}")
            types[name] = kind
            continue
        if line.startswith("#"):
            continue
        m = _SAMPLE_LINE_RE.match(line)
        if m is None:
            raise ValueError(f"line {lineno}: unparseable sample {line!r}")
        labels: dict[str, str] = {}
        raw = m.group("labels")
        if raw:
            pos = 0
            while pos < len(raw):
                pair = _LABEL_PAIR_RE.match(raw, pos)
                if pair is None:
                    raise ValueError(
                        f"line {lineno}: malformed labels {raw!r} "
                        f"(at offset {pos})"
                    )
                labels[pair.group("name")] = _unescape_label(
                    pair.group("value")
                )
                pos = pair.end()
                if pos < len(raw):
                    if raw[pos] != ",":
                        raise ValueError(
                            f"line {lineno}: expected ',' in labels {raw!r}"
                        )
                    pos += 1
        if m.group("exemplar") is not None:
            ex_labels: dict[str, str] = {}
            raw_ex = m.group("exemplar")
            pos = 0
            while pos < len(raw_ex):
                pair = _LABEL_PAIR_RE.match(raw_ex, pos)
                if pair is None:
                    raise ValueError(
                        f"line {lineno}: malformed exemplar {raw_ex!r}"
                    )
                ex_labels[pair.group("name")] = _unescape_label(
                    pair.group("value")
                )
                pos = pair.end()
                if pos < len(raw_ex):
                    if raw_ex[pos] != ",":
                        raise ValueError(
                            f"line {lineno}: expected ',' in exemplar "
                            f"{raw_ex!r}"
                        )
                    pos += 1
            float(m.group("exemplar_value"))  # must be numeric to scrape
            exemplars.setdefault(m.group("name"), []).append(
                (labels, ex_labels, float(m.group("exemplar_value")))
            )
        samples.setdefault(m.group("name"), []).append(
            (labels, float(m.group("value")))
        )
    return {
        "samples": samples,
        "types": types,
        "help": helps,
        "exemplars": exemplars,
    }

DEVICE_PID = 1
SPAN_PID = 2
REQUEST_PID = 4
ROUTING_PID = 5
#: multi-device SUMMA exports: device ``d``'s span subtree lands on pid
#: ``SUMMA_SPAN_PID_BASE + d`` and its per-SM tracks on
#: ``SUMMA_SM_PID_BASE + d`` — distinct process rows per device, as the
#: node timeline would otherwise interleave P devices on one track
SUMMA_SPAN_PID_BASE = 10
SUMMA_SM_PID_BASE = 40
_EPS = 1e-9

_META_NAMES = {
    "process_name",
    "process_sort_index",
    "thread_name",
    "thread_sort_index",
}


def span_events(
    root: Span, clock_ghz: float, *, pid: int = SPAN_PID, tid: int = 1
) -> list[dict]:
    """Chrome-trace events for one span tree (plus name metadata)."""
    us = 1e6 / (clock_ghz * 1e9)
    events: list[dict] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": pid,
            "tid": tid,
            "args": {"name": "pipeline spans"},
        },
        {
            "name": "thread_name",
            "ph": "M",
            "pid": pid,
            "tid": tid,
            "args": {"name": "host pipeline"},
        },
    ]
    for span in root.walk():
        end = span.end_cycle if span.end_cycle is not None else span.start_cycle
        events.append(
            {
                "name": span.name,
                "cat": "span",
                "ph": "X",
                "ts": span.start_cycle * us,
                "dur": (end - span.start_cycle) * us,
                "pid": pid,
                "tid": tid,
                "args": {k: span.attrs[k] for k in sorted(span.attrs)},
            }
        )
        for ev in span.events:
            events.append(
                {
                    "name": ev.label,
                    "cat": "span-event",
                    "ph": "i",
                    "ts": ev.cycle * us,
                    "pid": pid,
                    "tid": tid,
                    "s": "t",
                    "args": {"detail": ev.detail},
                }
            )
    return events


def routing_events(
    audit: dict, clock_ghz: float, *, pid: int = ROUTING_PID
) -> list[dict]:
    """The routing-audit track: predicted vs. actual cycles per engine.

    One thread row per candidate engine holding a slice of its
    *predicted* makespan; the chosen engine's row additionally holds
    the *actual* slice (both start at 0, so they nest).  ``audit`` is
    the dispatch event recorded by the adaptive selector
    (``result.routing_audit``).
    """
    us = 1e6 / (clock_ghz * 1e9)
    events: list[dict] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": pid,
            "tid": 0,
            "args": {"name": "routing audit"},
        }
    ]
    chosen = audit.get("chosen")
    for tid, (engine, predicted) in enumerate(
        sorted(audit.get("predicted", {}).items()), start=1
    ):
        events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": pid,
                "tid": tid,
                "args": {"name": f"{engine}{' *' if engine == chosen else ''}"},
            }
        )
        events.append(
            {
                "name": f"predicted {engine}",
                "cat": "routing",
                "ph": "X",
                "ts": 0.0,
                "dur": float(predicted) * us,
                "pid": pid,
                "tid": tid,
                "args": {"predicted_cycles": float(predicted)},
            }
        )
        if engine == chosen and "actual_cycles" in audit:
            events.append(
                {
                    "name": f"actual {engine}",
                    "cat": "routing",
                    "ph": "X",
                    "ts": 0.0,
                    "dur": float(audit["actual_cycles"]) * us,
                    "pid": pid,
                    "tid": tid,
                    "args": {
                        "actual_cycles": float(audit["actual_cycles"]),
                        "regret_bound": float(audit.get("regret_bound", 0.0)),
                    },
                }
            )
    return events


def perfetto_payload(
    *,
    spans: Span | None = None,
    trace=None,
    device=None,
    request=None,
    routing: dict | None = None,
    clock_ghz: float | None = None,
) -> dict:
    """Combined Perfetto JSON object for spans, kernel and device traces.

    ``device`` is a :class:`~repro.obs.device.DeviceTrace`; it adds a
    third process row (pid 3) with one thread per SM plus counter
    tracks (scratchpad bytes, chunk-pool occupancy).  ``request`` is a
    :class:`~repro.obs.trace.RequestTrace` (pid 4, wall-clock request
    timeline) and ``routing`` a selector dispatch event
    (``result.routing_audit``, pid 5).
    """
    if (
        spans is None and trace is None and device is None
        and request is None and routing is None
    ):
        raise ValueError(
            "need at least one of spans, trace, device, request or routing"
        )
    events: list[dict] = []
    if trace is not None:
        events.extend(trace.to_events(pid=DEVICE_PID))
        if clock_ghz is None:
            clock_ghz = trace.clock_ghz
    if device is not None:
        events.extend(device.to_perfetto_events())
        if clock_ghz is None:
            clock_ghz = device.clock_ghz
    if spans is not None:
        if clock_ghz is None:
            raise ValueError("clock_ghz is required to export spans alone")
        events.extend(span_events(spans, clock_ghz))
    if request is not None:
        events.extend(request.perfetto_events(pid=REQUEST_PID))
    if routing is not None:
        if clock_ghz is None:
            raise ValueError("clock_ghz is required to export routing audits")
        events.extend(routing_events(routing, clock_ghz))
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def _subtree_events(
    span: Span, offset: float, us: float, pid: int, tid: int
) -> list[dict]:
    """X/i events for one grafted span subtree shifted by ``offset``.

    The shift happens here, in presentation floats only — the span tree
    itself stays on the device-local clock so the bitwise reconcile
    checks keep holding on the original data.
    """
    events: list[dict] = []
    for s in span.walk():
        end = s.end_cycle if s.end_cycle is not None else s.start_cycle
        events.append(
            {
                "name": s.name,
                "cat": "span",
                "ph": "X",
                "ts": (s.start_cycle + offset) * us,
                "dur": (end - s.start_cycle) * us,
                "pid": pid,
                "tid": tid,
                "args": {k: s.attrs[k] for k in sorted(s.attrs)},
            }
        )
        for ev in s.events:
            events.append(
                {
                    "name": ev.label,
                    "cat": "span-event",
                    "ph": "i",
                    "ts": (ev.cycle + offset) * us,
                    "pid": pid,
                    "tid": tid,
                    "s": "t",
                    "args": {"detail": ev.detail},
                }
            )
    return events


def summa_perfetto_payload(result) -> dict:
    """Perfetto JSON for one multi-device SUMMA run.

    ``result`` is a :class:`repro.multi.SummaResult`.  The payload holds
    one node-narrative process (pid ``SPAN_PID``: partition, rounds with
    exposed broadcast windows, merge, assemble) plus **two process rows
    per device**: the device's grafted pipeline-span subtrees (pid
    ``SUMMA_SPAN_PID_BASE + ordinal``, one thread row per SUMMA round)
    and — when the tiles were run with ``device_trace=True`` — its
    per-SM tracks (pid ``SUMMA_SM_PID_BASE + ordinal``).  Device-local
    cycles are translated onto the node clock here, at export, using the
    ``start_cycle_on_node`` placement attr recorded by ``summa_spgemm``.
    """
    clock_ghz = result.clock_ghz
    us = 1e6 / (clock_ghz * 1e9)
    g = result.grid
    events: list[dict] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": SPAN_PID,
            "tid": 1,
            "args": {"name": "SUMMA node"},
        },
        {
            "name": "thread_name",
            "ph": "M",
            "pid": SPAN_PID,
            "tid": 1,
            "args": {"name": "node timeline"},
        },
    ]
    # node narrative: walk the tree but stop at grafted device subtrees
    # (they carry a start_cycle_on_node placement attr)
    pending = [result.spans]
    grafted: list[Span] = []
    while pending:
        span = pending.pop()
        if "start_cycle_on_node" in span.attrs:
            grafted.append(span)
            continue
        end = span.end_cycle if span.end_cycle is not None else span.start_cycle
        events.append(
            {
                "name": span.name,
                "cat": "span",
                "ph": "X",
                "ts": span.start_cycle * us,
                "dur": (end - span.start_cycle) * us,
                "pid": SPAN_PID,
                "tid": 1,
                "args": {k: span.attrs[k] for k in sorted(span.attrs)},
            }
        )
        pending.extend(span.children)

    named_pids: set[int] = set()
    for sub in sorted(
        grafted, key=lambda s: (s.attrs["device"], s.attrs["round"])
    ):
        ordinal = sub.attrs["device"]
        k = sub.attrs["round"]
        pid = SUMMA_SPAN_PID_BASE + ordinal
        if pid not in named_pids:
            named_pids.add(pid)
            events.append(
                {
                    "name": "process_name",
                    "ph": "M",
                    "pid": pid,
                    "tid": 0,
                    "args": {
                        "name": f"device {sub.attrs['device_grid']} pipeline"
                    },
                }
            )
            events.append(
                {
                    "name": "process_sort_index",
                    "ph": "M",
                    "pid": pid,
                    "tid": 0,
                    "args": {"sort_index": pid},
                }
            )
        events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": pid,
                "tid": k + 1,
                "args": {"name": f"round {k}"},
            }
        )
        offset = sub.attrs["start_cycle_on_node"] - sub.start_cycle
        events.extend(_subtree_events(sub, offset, us, pid, k + 1))

    # per-device SM tracks, when every tile carried a device trace
    traces = [run.result.device_trace for run in result.tile_runs.values()]
    if traces and all(t is not None for t in traces):
        for i in range(g):
            for j in range(g):
                ordinal = i * g + j
                runs = [result.tile_runs[(i, j, k)] for k in range(g)]
                merged = None
                for run in runs:
                    part = run.result.device_trace.shifted(run.start_cycle)
                    if merged is None:
                        merged = part
                    else:
                        merged.records.extend(part.records)
                events.extend(
                    merged.to_perfetto_events(
                        pid=SUMMA_SM_PID_BASE + ordinal,
                        process_name=f"device ({i},{j}) SMs",
                    )
                )
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_perfetto(path: str | Path, payload: dict) -> Path:
    """Validate and write a payload; refuses to write a malformed file."""
    validate_perfetto(payload)
    out = Path(path)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(payload))
    return out


def _check_row(row_key, slices: list[tuple[float, float, str]]) -> None:
    """Slices on one track must be disjoint or strictly nested."""
    stack: list[tuple[float, float, str]] = []
    for ts, end, name in sorted(slices, key=lambda s: (s[0], -(s[1] - s[0]))):
        while stack and stack[-1][1] <= ts + _EPS:
            stack.pop()
        if stack and end > stack[-1][1] + _EPS:
            raise ValueError(
                f"overlapping slices on row {row_key}: {name!r} "
                f"[{ts}, {end}] crosses {stack[-1][2]!r} end {stack[-1][1]}"
            )
        stack.append((ts, end, name))


def validate_perfetto(payload) -> None:
    """Schema-check a Perfetto JSON object; raises ``ValueError``.

    Checks the object model (``traceEvents`` list, required fields per
    phase) and per-row slice consistency (no partial overlaps).
    """
    if not isinstance(payload, dict) or "traceEvents" not in payload:
        raise ValueError("payload must be an object with 'traceEvents'")
    events = payload["traceEvents"]
    if not isinstance(events, list):
        raise ValueError("'traceEvents' must be a list")
    rows: dict[tuple, list[tuple[float, float, str]]] = {}
    for i, ev in enumerate(events):
        if not isinstance(ev, dict):
            raise ValueError(f"event {i} is not an object")
        for req in ("name", "ph", "pid", "tid"):
            if req not in ev:
                raise ValueError(f"event {i} is missing {req!r}")
        ph = ev["ph"]
        if ph == "M":
            if ev["name"] not in _META_NAMES:
                raise ValueError(f"unknown metadata record {ev['name']!r}")
            if "name" not in ev.get("args", {}) and "sort_index" not in ev.get(
                "args", {}
            ):
                raise ValueError(f"metadata event {i} carries no payload")
            continue
        if ph not in ("X", "i", "I", "B", "E", "C"):
            raise ValueError(f"event {i} has unsupported phase {ph!r}")
        ts = ev.get("ts")
        if not isinstance(ts, (int, float)) or ts < 0:
            raise ValueError(f"event {i} has invalid ts {ts!r}")
        if ph == "C":
            args = ev.get("args")
            if not isinstance(args, dict) or not args:
                raise ValueError(f"counter event {i} has no args")
            for key, value in args.items():
                if not isinstance(value, (int, float)):
                    raise ValueError(
                        f"counter event {i} has non-numeric series "
                        f"{key!r}: {value!r}"
                    )
            continue
        if ph == "X":
            dur = ev.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                raise ValueError(f"event {i} has invalid dur {dur!r}")
            rows.setdefault((ev["pid"], ev["tid"]), []).append(
                (float(ts), float(ts) + float(dur), str(ev["name"]))
            )
    for row_key, slices in rows.items():
        _check_row(row_key, slices)


def validate_perfetto_file(path: str | Path) -> None:
    """Load a JSON file and :func:`validate_perfetto` it."""
    validate_perfetto(json.loads(Path(path).read_text()))

"""Device-level tracing: per-block events, SM timelines, counter attribution.

The simulator computes — and, until now, threw away — exactly the
device-level signals the paper's evaluation is built on: which SM ran
which block for how many cycles (Fig. 7's stage breakdown, Table 3's
"mpL"), how much scratchpad each block actually touched (§3's hard
on-chip bound), how many ESC iterations and sort bits each block needed
(Fig. 9/10), and which stage generated which share of the global
traffic.  :class:`DeviceTrace` captures all of it as an ordered list of
records on the same simulated clock as ``result.spans``:

* a **launch record** per simulated kernel launch (ESC round, merge
  round, chunk copy) holding the scheduler's per-SM busy times plus one
  :class:`BlockEvent` per dispatched block — SM id, start/end cycle,
  A-row range, scratchpad high-water bytes, ESC iteration count, radix
  sort shapes, restart/abort flags and the block's own counter deltas;
* a **device-wide record** per perfectly-parallel pass (GLB, merge case
  assignment, the output row-pointer scan, the degradation fallback);
* a **host record** per restart round trip.

Exactness contract: within one record, block cycles and counters are the
engine outcomes themselves, and summing records chronologically
reproduces ``result.stage_cycles`` / ``result.counters`` / per-launch
``KernelTiming.sm_busy_cycles`` bit-for-bit (floats are re-accumulated
in the scheduler's dispatch order).  The trace is **byte-identical
across the three engines** — every field derives from engine-invariant
data — and zero-cost when ``AcSpgemmOptions.device_trace`` is off.  A
run that degrades to the fallback keeps its partial records and carries
an explicit truncation marker.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, replace

from ..gpu.counters import TrafficCounters

__all__ = [
    "DEVICE_TRACE_SCHEMA",
    "WORKER_ID_STRIDE",
    "BlockMeta",
    "BlockEvent",
    "DeviceRecord",
    "DeviceTrace",
    "merge_device_traces",
]

#: bump when the serialised trace layout changes incompatibly
DEVICE_TRACE_SCHEMA = 1

#: Perfetto process id for the per-SM tracks (host spans use 2, the
#: kernel-launch timeline uses 1 — see ``repro.obs.export``)
DEVICE_SM_PID = 3

#: worker-id namespace stride per device ordinal when traces from a
#: multi-device run are merged into one report: block/worker ids of
#: device ``d`` become ``id + d * WORKER_ID_STRIDE``, so per-device ids
#: can never collide (no single-device launch reaches 2^20 blocks)
WORKER_ID_STRIDE = 1 << 20


def _nonzero_counters(counters: dict | None) -> dict:
    """Drop zero fields; deterministic (sorted) key order."""
    if not counters:
        return {}
    return {k: counters[k] for k in sorted(counters) if counters[k]}


@dataclass(frozen=True)
class BlockMeta:
    """What the driver knows about one worker before placement.

    ``counters`` is the block's own :class:`TrafficCounters` delta for
    this round (snapshot dict); ``sort_log`` the radix sorts it ran as
    ``(n_elements, key_bits)`` tuples.  ``row_lo``/``row_hi`` is the
    block's A-row range (-1/-1 when it covers no rows), which is what
    lets reports attribute traffic and re-sorting to regions of A.
    """

    worker_id: int
    row_lo: int
    row_hi: int
    cycles: float = 0.0
    done: bool = True
    aborted: bool = False
    scratch_high_water: int = 0
    esc_iterations: int = 0
    sort_log: tuple = ()
    counters: dict = field(default_factory=dict)


@dataclass(frozen=True)
class BlockEvent:
    """One block's execution inside one launch, placed on an SM."""

    slot: int  # dispatch position within the launch
    worker_id: int
    sm: int  # -1: aborted before dispatch
    start_cycle: float  # absolute (same clock as result.spans)
    end_cycle: float
    cycles: float
    row_lo: int
    row_hi: int
    done: bool
    aborted: bool
    scratch_high_water: int
    esc_iterations: int
    sort_log: tuple
    counters: dict

    def to_dict(self) -> dict:
        return {
            "slot": self.slot,
            "worker_id": self.worker_id,
            "sm": self.sm,
            "start_cycle": self.start_cycle,
            "end_cycle": self.end_cycle,
            "cycles": self.cycles,
            "row_lo": self.row_lo,
            "row_hi": self.row_hi,
            "done": self.done,
            "aborted": self.aborted,
            "scratch_high_water": self.scratch_high_water,
            "esc_iterations": self.esc_iterations,
            "sort_log": [list(s) for s in self.sort_log],
            "counters": _nonzero_counters(self.counters),
        }


@dataclass(frozen=True)
class DeviceRecord:
    """One chronological entry of the device trace.

    ``kind`` is ``"launch"`` (scheduled blocks), ``"device_wide"`` (a
    perfectly-parallel pass charged as ``cycles / num_sms``) or
    ``"host"`` (a restart round trip).  ``counters`` holds the
    *driver-level* counter deltas of this record (kernel launches, host
    round trips, device-wide meters); block-level deltas live on the
    :class:`BlockEvent` entries.  Cycle bookkeeping: ``cycles`` is
    exactly what the driver added to ``stage_cycles[stage]`` for this
    record, so a chronological sum reproduces the stage totals.
    """

    kind: str
    stage: str
    label: str
    start_cycle: float
    cycles: float
    round_index: int = -1
    launch_overhead: float = 0.0
    sm_busy: tuple = ()
    pool_used_bytes: int = 0
    pool_capacity_bytes: int = 0
    counters: dict = field(default_factory=dict)
    blocks: tuple = ()

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "stage": self.stage,
            "label": self.label,
            "start_cycle": self.start_cycle,
            "cycles": self.cycles,
            "round_index": self.round_index,
            "launch_overhead": self.launch_overhead,
            "sm_busy": list(self.sm_busy),
            "pool_used_bytes": self.pool_used_bytes,
            "pool_capacity_bytes": self.pool_capacity_bytes,
            "counters": _nonzero_counters(self.counters),
            "blocks": [b.to_dict() for b in self.blocks],
        }


class DeviceTrace:
    """Collector and container for one run's device-level trace."""

    def __init__(self, *, clock_ghz: float, num_sms: int) -> None:
        self.clock_ghz = clock_ghz
        self.num_sms = num_sms
        self.records: list[DeviceRecord] = []
        #: ESC block id -> chunks it contributed to the final pool
        self.chunk_counts: dict[int, int] = {}
        self.truncated = False
        self.truncation_reason = ""

    # -- recording (driver-facing) --------------------------------------

    def record_device_wide(
        self,
        stage: str,
        label: str,
        *,
        start_cycle: float,
        cycles: float,
        counters: dict | None = None,
        pool=None,
    ) -> None:
        """A pass that parallelises perfectly over the SMs."""
        self.records.append(
            DeviceRecord(
                kind="device_wide",
                stage=stage,
                label=label,
                start_cycle=start_cycle,
                cycles=cycles,
                pool_used_bytes=pool.used_bytes if pool is not None else 0,
                pool_capacity_bytes=pool.capacity_bytes if pool is not None else 0,
                counters=dict(counters or {}),
            )
        )

    def record_host(
        self,
        stage: str,
        label: str,
        *,
        start_cycle: float,
        cycles: float,
        counters: dict | None = None,
        pool=None,
    ) -> None:
        """A host synchronisation round trip (restart)."""
        self.records.append(
            DeviceRecord(
                kind="host",
                stage=stage,
                label=label,
                start_cycle=start_cycle,
                cycles=cycles,
                pool_used_bytes=pool.used_bytes if pool is not None else 0,
                pool_capacity_bytes=pool.capacity_bytes if pool is not None else 0,
                counters=dict(counters or {}),
            )
        )

    def record_launch(
        self,
        stage: str,
        *,
        round_index: int,
        start_cycle: float,
        timing,
        launch_overhead: float,
        workers: list[BlockMeta],
        aborted: list[BlockMeta] | None = None,
        counters: dict | None = None,
        pool=None,
    ) -> None:
        """One scheduled kernel launch; ``workers`` in dispatch order.

        ``timing`` must come from ``schedule_blocks(...,
        record_placements=True)`` so every worker has a placement.
        Aborted workers (fault injection) never reached an SM and are
        appended after the dispatched blocks with ``sm=-1``.
        """
        placements = timing.placements
        if placements is None:
            raise ValueError("device trace needs schedule_blocks placements")
        if len(placements) != len(workers):
            raise ValueError(
                f"{len(workers)} workers but {len(placements)} placements"
            )
        blocks = []
        for slot, (meta, pl) in enumerate(zip(workers, placements)):
            blocks.append(
                BlockEvent(
                    slot=slot,
                    worker_id=meta.worker_id,
                    sm=pl.sm,
                    start_cycle=start_cycle + pl.start_cycle,
                    end_cycle=start_cycle + pl.end_cycle,
                    cycles=meta.cycles,
                    row_lo=meta.row_lo,
                    row_hi=meta.row_hi,
                    done=meta.done,
                    aborted=False,
                    scratch_high_water=meta.scratch_high_water,
                    esc_iterations=meta.esc_iterations,
                    sort_log=tuple(meta.sort_log),
                    counters=dict(meta.counters),
                )
            )
        for k, meta in enumerate(aborted or []):
            blocks.append(
                BlockEvent(
                    slot=len(workers) + k,
                    worker_id=meta.worker_id,
                    sm=-1,
                    start_cycle=start_cycle,
                    end_cycle=start_cycle,
                    cycles=0.0,
                    row_lo=meta.row_lo,
                    row_hi=meta.row_hi,
                    done=False,
                    aborted=True,
                    scratch_high_water=0,
                    esc_iterations=meta.esc_iterations,
                    sort_log=(),
                    counters={},
                )
            )
        self.records.append(
            DeviceRecord(
                kind="launch",
                stage=stage,
                label=f"{stage.lower()}.round",
                start_cycle=start_cycle,
                cycles=timing.makespan_cycles,
                round_index=round_index,
                launch_overhead=launch_overhead,
                sm_busy=tuple(timing.sm_busy_cycles),
                pool_used_bytes=pool.used_bytes if pool is not None else 0,
                pool_capacity_bytes=pool.capacity_bytes if pool is not None else 0,
                counters=dict(counters or {}),
                blocks=tuple(blocks),
            )
        )

    def finalize_chunks(self, pool, n_esc_blocks: int) -> None:
        """Record how many final-pool chunks each ESC block produced
        (Fig. 9's chunks-per-block distribution).  Merge-produced chunks
        carry a block id past the ESC range and are counted separately
        under the key ``-1``."""
        counts = {i: 0 for i in range(n_esc_blocks)}
        merged = 0
        for chunk in pool.ordered_chunks():
            bid = chunk.order_key[0]
            if bid < n_esc_blocks:
                counts[bid] = counts.get(bid, 0) + 1
            else:
                merged += 1
        if merged:
            counts[-1] = merged
        self.chunk_counts = counts

    def mark_truncated(self, reason: str) -> None:
        """The run degraded; records after this point are fallback-only."""
        self.truncated = True
        self.truncation_reason = reason

    # -- queries ---------------------------------------------------------

    def launches(self) -> list[DeviceRecord]:
        return [r for r in self.records if r.kind == "launch"]

    def block_events(self):
        for rec in self.records:
            for ev in rec.blocks:
                yield rec, ev

    def stage_cycle_totals(self) -> dict[str, float]:
        """Per-stage cycle sums, accumulated in record (chronological)
        order — the same float addition order the driver used, so the
        totals equal ``result.stage_cycles`` exactly."""
        totals: dict[str, float] = {}
        for rec in self.records:
            totals[rec.stage] = totals.get(rec.stage, 0.0) + rec.cycles
        return totals

    def counter_totals(self) -> TrafficCounters:
        """Sum of every record- and block-level counter delta."""
        total = TrafficCounters()
        delta = TrafficCounters()
        for rec in self.records:
            for name, value in rec.counters.items():
                setattr(delta, name, getattr(delta, name) + value)
            for ev in rec.blocks:
                for name, value in ev.counters.items():
                    setattr(delta, name, getattr(delta, name) + value)
        total.merge(delta)
        return total

    def per_sm_busy(self, rec: DeviceRecord) -> list[float]:
        """Recompute one launch's per-SM busy cycles from its block
        events, accumulating in slot (dispatch) order — bit-identical to
        the scheduler's ``sm_busy_cycles``."""
        busy = [0.0] * self.num_sms
        for ev in rec.blocks:
            if ev.sm >= 0:
                busy[ev.sm] += ev.cycles
        return busy

    def per_sm_busy_totals(self) -> dict[str, list[float]]:
        """Per-stage per-SM busy totals over all launches (plus the
        cross-stage total under ``"ALL"``)."""
        totals: dict[str, list[float]] = {"ALL": [0.0] * self.num_sms}
        for rec in self.launches():
            stage_busy = totals.setdefault(rec.stage, [0.0] * self.num_sms)
            busy = self.per_sm_busy(rec)
            for sm in range(self.num_sms):
                stage_busy[sm] += busy[sm]
                totals["ALL"][sm] += busy[sm]
        return totals

    # -- multi-device merging ---------------------------------------------

    def renumbered(self, *, ordinal: int, total_sms: int) -> "DeviceTrace":
        """A copy with SM and worker ids namespaced by device ordinal.

        SM ``s`` of device ``d`` becomes SM ``d * num_sms + s`` of a
        ``total_sms``-wide node, worker/block ids move up by
        ``d * WORKER_ID_STRIDE``, and each launch's ``sm_busy`` vector
        is re-padded so the busy floats land at their namespaced SM
        positions *without being re-accumulated* — ``per_sm_busy`` on
        the merged trace therefore re-derives bit-for-bit.  Cycles are
        left on the device-local clock (so span alignment and stage
        sums stay byte-identical); node-timeline placement is a
        presentation concern handled at Perfetto export.
        """
        sm_offset = ordinal * self.num_sms
        worker_offset = ordinal * WORKER_ID_STRIDE
        if sm_offset + self.num_sms > total_sms:
            raise ValueError(
                f"ordinal {ordinal} does not fit {total_sms} node SMs"
            )
        out = DeviceTrace(clock_ghz=self.clock_ghz, num_sms=total_sms)
        out.truncated = self.truncated
        out.truncation_reason = self.truncation_reason
        out.chunk_counts = {
            (k + worker_offset if k >= 0 else k): v
            for k, v in self.chunk_counts.items()
        }
        for rec in self.records:
            blocks = tuple(
                replace(
                    ev,
                    worker_id=ev.worker_id + worker_offset,
                    sm=ev.sm + sm_offset if ev.sm >= 0 else ev.sm,
                )
                for ev in rec.blocks
            )
            sm_busy = rec.sm_busy
            if sm_busy:
                padded = [0.0] * total_sms
                padded[sm_offset : sm_offset + len(sm_busy)] = list(sm_busy)
                sm_busy = tuple(padded)
            out.records.append(replace(rec, blocks=blocks, sm_busy=sm_busy))
        return out

    # -- serialisation ----------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "schema": DEVICE_TRACE_SCHEMA,
            "clock_ghz": self.clock_ghz,
            "num_sms": self.num_sms,
            "truncated": self.truncated,
            "truncation_reason": self.truncation_reason,
            "chunk_counts": {str(k): self.chunk_counts[k] for k in sorted(self.chunk_counts)},
            "records": [r.to_dict() for r in self.records],
        }

    def to_json(self) -> str:
        """Canonical serialisation: byte-identical across engines."""
        return json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))

    def shifted(self, offset: float) -> "DeviceTrace":
        """Presentation-only copy with every cycle stamp moved by ``offset``.

        Used to place a device-local trace onto a node-wide timeline at
        Perfetto export.  Adding a float offset perturbs re-derived
        durations bitwise, so a shifted trace must **never** be fed to
        ``reconcile`` — the exactness checks run on the unshifted trace.
        """
        out = DeviceTrace(clock_ghz=self.clock_ghz, num_sms=self.num_sms)
        out.chunk_counts = dict(self.chunk_counts)
        out.truncated = self.truncated
        out.truncation_reason = self.truncation_reason
        for rec in self.records:
            out.records.append(
                replace(
                    rec,
                    start_cycle=rec.start_cycle + offset,
                    blocks=tuple(
                        replace(
                            ev,
                            start_cycle=ev.start_cycle + offset,
                            end_cycle=ev.end_cycle + offset,
                        )
                        for ev in rec.blocks
                    ),
                )
            )
        return out

    # -- Perfetto export ---------------------------------------------------

    def to_perfetto_events(
        self,
        pid: int = DEVICE_SM_PID,
        *,
        process_name: str = "simulated device (per-SM)",
    ) -> list[dict]:
        """Per-SM tracks plus counter tracks in Chrome trace format.

        Slices (``ph: "X"``) land on one thread per SM; counter events
        (``ph: "C"``) track the chunk-pool occupancy at each record and
        the per-SM scratchpad high-water at each block start/end.
        Timestamps are microseconds on the simulated clock.
        """
        scale = 1.0 / (self.clock_ghz * 1e3)  # cycles -> us

        def us(cycles: float) -> float:
            return cycles * scale

        events: list[dict] = [
            {
                "name": "process_name",
                "ph": "M",
                "pid": pid,
                "tid": 0,
                "args": {"name": process_name},
            },
            {
                "name": "process_sort_index",
                "ph": "M",
                "pid": pid,
                "tid": 0,
                "args": {"sort_index": pid},
            },
        ]
        used_sms = sorted(
            {ev.sm for _, ev in self.block_events() if ev.sm >= 0}
        )
        for sm in used_sms:
            events.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "pid": pid,
                    "tid": sm + 1,
                    "args": {"name": f"SM {sm}"},
                }
            )
            events.append(
                {
                    "name": "thread_sort_index",
                    "ph": "M",
                    "pid": pid,
                    "tid": sm + 1,
                    "args": {"sort_index": sm + 1},
                }
            )
        for rec in self.records:
            if rec.kind == "launch":
                for ev in rec.blocks:
                    if ev.sm < 0:
                        events.append(
                            {
                                "name": f"{rec.stage} abort w{ev.worker_id}",
                                "ph": "i",
                                "ts": us(ev.start_cycle),
                                "pid": pid,
                                "tid": 0,
                                "s": "p",
                            }
                        )
                        continue
                    events.append(
                        {
                            "name": f"{rec.stage} r{rec.round_index} w{ev.worker_id}",
                            "ph": "X",
                            "ts": us(ev.start_cycle),
                            "dur": us(ev.cycles),
                            "pid": pid,
                            "tid": ev.sm + 1,
                            "args": {
                                "rows": f"[{ev.row_lo}, {ev.row_hi}]",
                                "scratch_high_water": ev.scratch_high_water,
                                "esc_iterations": ev.esc_iterations,
                                "sorts": len(ev.sort_log),
                                "done": ev.done,
                            },
                        }
                    )
                    if ev.scratch_high_water:
                        events.append(
                            {
                                "name": f"scratchpad bytes (SM {ev.sm})",
                                "ph": "C",
                                "ts": us(ev.start_cycle),
                                "pid": pid,
                                "tid": 0,
                                "args": {"bytes": ev.scratch_high_water},
                            }
                        )
                        events.append(
                            {
                                "name": f"scratchpad bytes (SM {ev.sm})",
                                "ph": "C",
                                "ts": us(ev.end_cycle),
                                "pid": pid,
                                "tid": 0,
                                "args": {"bytes": 0},
                            }
                        )
            if rec.pool_capacity_bytes:
                events.append(
                    {
                        "name": "chunk pool occupancy",
                        "ph": "C",
                        "ts": us(rec.start_cycle + rec.cycles),
                        "pid": pid,
                        "tid": 0,
                        "args": {
                            "used_bytes": rec.pool_used_bytes,
                            "free_bytes": rec.pool_capacity_bytes
                            - rec.pool_used_bytes,
                        },
                    }
                )
        return events


def merge_device_traces(entries, *, clock_ghz: float, total_sms: int) -> DeviceTrace:
    """Merge per-device traces of one node run into a single trace.

    ``entries`` is an iterable of ``(ordinal, DeviceTrace)`` pairs in
    the deterministic merge order (device-major, then round).  Each
    trace is renumbered into the ordinal's SM/worker namespace first,
    so ids from different devices can never collide; records keep their
    device-local cycles and are concatenated in entry order, which is
    the order every exactness check (stage sums, span alignment) uses.
    """
    merged = DeviceTrace(clock_ghz=clock_ghz, num_sms=total_sms)
    reasons = []
    for ordinal, trace in entries:
        part = trace.renumbered(ordinal=ordinal, total_sms=total_sms)
        merged.records.extend(part.records)
        for bid, count in part.chunk_counts.items():
            # namespaced ids are disjoint; only the merge-produced
            # bucket (-1) is shared and accumulates
            merged.chunk_counts[bid] = merged.chunk_counts.get(bid, 0) + count
        if part.truncated:
            merged.truncated = True
            if part.truncation_reason:
                reasons.append(f"device {ordinal}: {part.truncation_reason}")
    merged.truncation_reason = "; ".join(reasons)
    return merged

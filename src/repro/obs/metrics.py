"""Metrics aggregation over one or many AC-SpGEMM runs.

The :class:`MetricsRegistry` unifies every quantity the evaluation
section measures — :class:`~repro.gpu.counters.TrafficCounters`
snapshots, per-stage simulated cycles (Fig. 7), restart and degradation
counts (Table 3), chunk-pool high-water marks (Fig. 8) and span cycle
sums — behind one deterministic store that exports both JSON and
Prometheus text format.

Counters accumulate across :meth:`record_result` calls; high-water
gauges take the maximum (``*_high_water``) or minimum (``*_min``) seen,
so a registry can aggregate a whole benchmark campaign.  All exports
are byte-deterministic for a fixed sequence of recorded runs: families
and samples are emitted in sorted order and floats rendered with
``repr``.
"""

from __future__ import annotations

import bisect
import threading
from dataclasses import dataclass, field

from ..gpu.counters import COUNTER_DOC
from .export import sanitize_label_name, sanitize_metric_name

__all__ = ["DEFAULT_LATENCY_BUCKETS_MS", "MetricsRegistry"]

_KIND_COUNTER = "counter"
_KIND_GAUGE = "gauge"
_KIND_HISTOGRAM = "histogram"

#: default latency bucket upper bounds in milliseconds (the +Inf bucket
#: is implicit) — fixed so every export is deterministic and two
#: daemons' histograms are mergeable bucket by bucket
DEFAULT_LATENCY_BUCKETS_MS = (
    1.0, 2.5, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0,
    500.0, 1000.0, 2500.0, 5000.0, 10000.0,
)


def _render_value(value) -> str:
    """Deterministic number rendering (ints stay integral)."""
    if isinstance(value, bool):  # bools are ints; refuse silently odd output
        raise TypeError("metric values must be numbers, not bool")
    if isinstance(value, int):
        return str(value)
    return repr(float(value))


def _escape_label(value: str) -> str:
    """Prometheus label-value escaping (backslash, quote, newline)."""
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def sample_key(name: str, labels: dict) -> str:
    """Canonical sample identity, identical to the Prometheus line head.

    ``repro_stage_cycles_total{stage="ESC"}`` — labels sorted by key.
    Label *names* are sanitized to the exposition grammar (names derived
    from matrix identifiers carry ``-``/``.``); label values only need
    escaping.
    """
    name = sanitize_metric_name(name)
    if not labels:
        return name
    san = {sanitize_label_name(k): v for k, v in labels.items()}
    inner = ",".join(
        f'{k}="{_escape_label(san[k])}"' for k in sorted(san)
    )
    return f"{name}{{{inner}}}"


@dataclass
class _Histogram:
    """One labelled histogram sample: cumulative-exportable buckets.

    ``counts[i]`` is the *per-bucket* (non-cumulative) observation count
    for ``bounds[i]``; ``counts[-1]`` is the +Inf bucket.  Exports emit
    the cumulative form.  ``exemplars`` maps a bucket index to the most
    recent exemplar observed in it (OpenMetrics-style: a label set —
    typically a trace id — plus the observed value).
    """

    bounds: tuple
    counts: list[int] = field(default_factory=list)
    sum: float = 0.0
    count: int = 0
    exemplars: dict[int, dict] = field(default_factory=dict)

    def observe(self, value: float, exemplar: dict | None = None) -> None:
        if not self.counts:
            self.counts = [0] * (len(self.bounds) + 1)
        idx = bisect.bisect_left(self.bounds, value)
        self.counts[idx] += 1
        self.sum += value
        self.count += 1
        if exemplar:
            self.exemplars[idx] = {
                "labels": {str(k): str(v) for k, v in sorted(exemplar.items())},
                "value": float(value),
            }

    def cumulative(self) -> list[int]:
        total = 0
        out = []
        for c in self.counts:
            total += c
            out.append(total)
        return out


@dataclass
class _Family:
    """One metric family: a kind, a help string and labelled samples."""

    name: str
    kind: str
    help: str = ""
    samples: dict[str, float] = field(default_factory=dict)
    labels_of: dict[str, dict] = field(default_factory=dict)
    #: histogram-kind families only: fixed bucket bounds + per-label-set
    #: histogram state
    bounds: tuple | None = None
    hists: dict[str, _Histogram] = field(default_factory=dict)


class MetricsRegistry:
    """Deterministic counter/gauge store with JSON and Prometheus export.

    ``const_labels`` are merged into every sample — the profile CLI uses
    this to label everything with the engine that produced it.

    The registry is thread-safe: every update and export serialises on
    one reentrant lock, so the serve daemon's executor threads can fold
    results into a shared registry while ``/metrics`` scrapes it.  The
    single-threaded callers (profile CLI, campaign merge) pay one
    uncontended lock acquisition per update — noise next to a run.
    """

    def __init__(self, const_labels: dict | None = None) -> None:
        self._families: dict[str, _Family] = {}
        self.const_labels = dict(const_labels or {})
        self._lock = threading.RLock()

    # -- primitive updates -------------------------------------------

    def _family(self, name: str, kind: str, help: str) -> _Family:
        name = sanitize_metric_name(name)
        fam = self._families.get(name)
        if fam is None:
            fam = _Family(name=name, kind=kind, help=help)
            self._families[name] = fam
        elif fam.kind != kind:
            raise ValueError(
                f"metric {name!r} already registered as {fam.kind}"
            )
        if help and not fam.help:
            fam.help = help
        return fam

    def _sample(self, fam: _Family, labels: dict) -> str:
        merged = {**self.const_labels, **labels}
        key = sample_key(fam.name, merged)
        fam.labels_of.setdefault(key, merged)
        return key

    def inc(self, name: str, value=1, help: str = "", **labels) -> None:
        """Add ``value`` to a monotonic counter sample."""
        if value < 0:
            raise ValueError(f"counter {name!r} cannot decrease")
        with self._lock:
            fam = self._family(name, _KIND_COUNTER, help)
            key = self._sample(fam, labels)
            fam.samples[key] = fam.samples.get(key, 0) + value

    def set_max(self, name: str, value, help: str = "", **labels) -> None:
        """High-water gauge: keep the maximum value observed."""
        with self._lock:
            fam = self._family(name, _KIND_GAUGE, help)
            key = self._sample(fam, labels)
            if key not in fam.samples or value > fam.samples[key]:
                fam.samples[key] = value

    def set_min(self, name: str, value, help: str = "", **labels) -> None:
        """Low-water gauge: keep the minimum value observed."""
        with self._lock:
            fam = self._family(name, _KIND_GAUGE, help)
            key = self._sample(fam, labels)
            if key not in fam.samples or value < fam.samples[key]:
                fam.samples[key] = value

    def set(self, name: str, value, help: str = "", **labels) -> None:
        """Plain gauge: last write wins."""
        with self._lock:
            fam = self._family(name, _KIND_GAUGE, help)
            fam.samples[self._sample(fam, labels)] = value

    def observe(
        self,
        name: str,
        value,
        help: str = "",
        buckets: tuple | None = None,
        exemplar: dict | None = None,
        **labels,
    ) -> None:
        """Record one observation into a bounded histogram sample.

        ``buckets`` fixes the family's upper bounds on first use
        (:data:`DEFAULT_LATENCY_BUCKETS_MS` otherwise) and must agree on
        every later call — deterministic bucket layout is what makes the
        export byte-stable.  ``exemplar`` is an optional small label set
        (e.g. ``{"trace_id": ...}``) attached OpenMetrics-style to the
        bucket the observation lands in; the latest exemplar per bucket
        wins.
        """
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise TypeError("histogram observations must be numbers")
        with self._lock:
            fam = self._family(name, _KIND_HISTOGRAM, help)
            if fam.bounds is None:
                fam.bounds = tuple(
                    float(b) for b in (buckets or DEFAULT_LATENCY_BUCKETS_MS)
                )
                if list(fam.bounds) != sorted(set(fam.bounds)):
                    raise ValueError("histogram buckets must be increasing")
            elif buckets is not None and tuple(
                float(b) for b in buckets
            ) != fam.bounds:
                raise ValueError(
                    f"metric {name!r} already registered with different "
                    "buckets"
                )
            key = self._sample(fam, labels)
            hist = fam.hists.get(key)
            if hist is None:
                hist = fam.hists[key] = _Histogram(bounds=fam.bounds)
            hist.observe(float(value), exemplar)

    def histogram(self, name: str, **labels) -> dict:
        """Snapshot one histogram sample (raises ``KeyError`` if absent).

        Returns ``{"buckets": {le: cumulative}, "sum": s, "count": n,
        "exemplars": {le: {...}}}`` with ``le`` rendered like the
        Prometheus export (``repr`` floats plus ``"+Inf"``).
        """
        with self._lock:
            fam = self._families[sanitize_metric_name(name)]
            key = sample_key(name, {**self.const_labels, **labels})
            hist = fam.hists[key]
            les = [repr(b) for b in hist.bounds] + ["+Inf"]
            cum = hist.cumulative() or [0] * len(les)
            return {
                "buckets": dict(zip(les, cum)),
                "sum": hist.sum,
                "count": hist.count,
                "exemplars": {
                    les[i]: dict(ex) for i, ex in sorted(hist.exemplars.items())
                },
            }

    def value(self, name: str, **labels):
        """Read one sample (raises ``KeyError`` when absent)."""
        with self._lock:
            fam = self._families[sanitize_metric_name(name)]
            key = sample_key(name, {**self.const_labels, **labels})
            return fam.samples[key]

    # -- aggregation of pipeline results ------------------------------

    def record_result(self, result) -> None:
        """Fold one :class:`~repro.core.acspgemm.AcSpgemmResult` in.

        Holds the registry lock for the whole fold so a concurrent
        export never sees a half-recorded run (the lock is reentrant,
        so the nested ``inc``/``set`` calls re-enter it cheaply).
        """
        with self._lock:
            self._record_result_locked(result)

    def _record_result_locked(self, result) -> None:
        for cname, cval in sorted(result.counters.snapshot().items()):
            self.inc(
                "repro_traffic_total",
                cval,
                help="Raw simulated-device operation counts.",
                counter=cname,
            )
        for stage, cycles in result.stage_cycles.items():
            self.inc(
                "repro_stage_cycles_total",
                cycles,
                help="Simulated cycles per pipeline stage (Fig. 7).",
                stage=stage,
            )
        self.inc("repro_runs_total", 1, help="Multiplications recorded.")
        self.inc(
            "repro_restarts_total",
            result.restarts,
            help="Chunk-pool restart round trips (Table 3).",
        )
        self.inc(
            "repro_degraded_runs_total",
            1 if result.degraded else 0,
            help="Runs recomputed by the global-ESC fallback.",
        )
        if result.failure:
            self.inc(
                "repro_failures_total",
                1,
                help="Unrecoverable pipeline failures by error kind.",
                kind=str(result.failure.get("kind", "unknown")),
            )
        mem = result.memory
        self.set_max(
            "repro_chunk_pool_capacity_bytes_high_water",
            mem.chunk_pool_bytes,
            help="Largest chunk-pool allocation seen (Fig. 8).",
        )
        self.set_max(
            "repro_chunk_pool_used_bytes_high_water",
            mem.chunk_used_bytes,
            help="Largest chunk-pool usage seen (Table 3).",
        )
        self.set_max(
            "repro_helper_bytes_high_water",
            mem.helper_bytes,
            help="Largest helper-structure allocation seen.",
        )
        self.set(
            "repro_output_bytes", mem.output_bytes,
            help="Output matrix bytes of the last run.",
        )
        self.set(
            "repro_output_nnz", result.matrix.nnz,
            help="Output non-zeros of the last run.",
        )
        self.set_max(
            "repro_chunks_high_water", result.n_chunks,
            help="Most chunks allocated by one run.",
        )
        self.set_max(
            "repro_blocks_high_water", result.n_blocks,
            help="Most ESC blocks launched by one run.",
        )
        self.set_min(
            "repro_multiprocessor_load_min",
            result.multiprocessor_load,
            help="Worst per-kernel multiprocessor load (Table 3 mpL).",
        )
        self.set_min(
            "repro_sm_utilization_min",
            result.sm_utilization,
            help="Worst-case fraction of SM-cycles busy over the "
            "block-level kernel launches.",
        )
        if result.spans is not None:
            for name in sorted({s.name for s in result.spans.walk()}):
                self.inc(
                    "repro_span_cycles_total",
                    result.spans.cycle_sum(name),
                    help="Total simulated cycles per span name.",
                    span=name,
                )
                self.inc(
                    "repro_spans_total",
                    sum(1 for s in result.spans.walk() if s.name == name),
                    help="Spans recorded per span name.",
                    span=name,
                )
        for op, count in sorted(result.engine_stats.items()):
            self.inc(
                "repro_host_ops_total",
                count,
                help="Host-side engine telemetry (engine-specific; "
                "excluded from cross-engine parity).",
                op=op,
            )

    @classmethod
    def from_result(cls, result, **const_labels) -> "MetricsRegistry":
        """Registry holding exactly one run's metrics."""
        reg = cls(const_labels=const_labels or None)
        reg.record_result(result)
        return reg

    @staticmethod
    def counter_doc(counter_name: str) -> str:
        """Help text for one raw traffic counter."""
        return COUNTER_DOC.get(counter_name, "")

    # -- export --------------------------------------------------------

    @staticmethod
    def _hist_rows(fam: _Family, key: str) -> list[tuple[str, object, dict | None]]:
        """``(sample_key, value, exemplar)`` rows for one histogram sample.

        Bucket rows come in ascending ``le`` order (cumulative counts),
        followed by ``_sum`` and ``_count`` — the exact layout both
        exports share so JSON and Prometheus always agree.
        """
        hist = fam.hists[key]
        labels = fam.labels_of[key]
        les = [repr(b) for b in hist.bounds] + ["+Inf"]
        cum = hist.cumulative() or [0] * len(les)
        rows: list[tuple[str, object, dict | None]] = []
        for i, (le, c) in enumerate(zip(les, cum)):
            rows.append(
                (
                    sample_key(f"{fam.name}_bucket", {**labels, "le": le}),
                    c,
                    hist.exemplars.get(i),
                )
            )
        rows.append((sample_key(f"{fam.name}_sum", labels), hist.sum, None))
        rows.append((sample_key(f"{fam.name}_count", labels), hist.count, None))
        return rows

    def to_json(self) -> dict:
        """Flat deterministic document: sample key -> value, plus meta."""
        metrics: dict = {}
        meta: dict = {}
        with self._lock:
            for name in sorted(self._families):
                fam = self._families[name]
                meta[name] = {"type": fam.kind, "help": fam.help}
                for key in sorted(fam.samples):
                    metrics[key] = fam.samples[key]
                if fam.kind == _KIND_HISTOGRAM:
                    meta[name]["buckets"] = list(fam.bounds or ())
                    exemplars: dict = {}
                    for key in sorted(fam.hists):
                        for skey, value, ex in self._hist_rows(fam, key):
                            metrics[skey] = value
                            if ex is not None:
                                exemplars[skey] = dict(ex)
                    if exemplars:
                        meta[name]["exemplars"] = exemplars
        return {"metrics": metrics, "meta": meta}

    def to_prometheus(self) -> str:
        """Prometheus text exposition format (0.0.4), sorted and stable.

        Histogram bucket lines carry OpenMetrics-style exemplars
        (``... 5 # {trace_id="..."} 4.2``) where one was recorded;
        :func:`repro.obs.export.parse_prometheus_text` round-trips them.
        """
        lines: list[str] = []
        with self._lock:
            for name in sorted(self._families):
                fam = self._families[name]
                if fam.help:
                    lines.append(f"# HELP {name} {fam.help}")
                lines.append(f"# TYPE {name} {fam.kind}")
                for key in sorted(fam.samples):
                    lines.append(f"{key} {_render_value(fam.samples[key])}")
                if fam.kind == _KIND_HISTOGRAM:
                    for key in sorted(fam.hists):
                        for skey, value, ex in self._hist_rows(fam, key):
                            line = f"{skey} {_render_value(value)}"
                            if ex is not None:
                                inner = ",".join(
                                    f'{sanitize_label_name(k)}='
                                    f'"{_escape_label(v)}"'
                                    for k, v in sorted(ex["labels"].items())
                                )
                                line += (
                                    f" # {{{inner}}} "
                                    f"{_render_value(ex['value'])}"
                                )
                            lines.append(line)
        return "\n".join(lines) + "\n"

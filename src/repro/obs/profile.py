"""The ``repro profile`` workload: one instrumented run, three exports.

:func:`profile_run` executes AC-SpGEMM with tracing forced on and wraps
the result in a :class:`ProfileReport`, which renders

* a human-readable per-stage report (:meth:`ProfileReport.text`),
* a merged Perfetto timeline of the device trace and the pipeline span
  tree (:meth:`ProfileReport.write_trace`),
* the :class:`~repro.obs.metrics.MetricsRegistry` as a JSON document or
  Prometheus text file (:meth:`ProfileReport.write_metrics_json` /
  :meth:`ProfileReport.write_prometheus`).

The JSON document doubles as the artifact format consumed by
``benchmarks/bench_compare.py``: everything under ``"metrics"`` is a
flat ``sample key -> number`` map, so two profile artifacts diff
directly.  All quantities are simulated (cycle-based), which makes the
artifacts machine-independent and byte-deterministic for a fixed
matrix, engine and option set.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass
from pathlib import Path

from ..core.acspgemm import STAGE_KEYS, AcSpgemmResult, ac_spgemm
from ..core.options import AcSpgemmOptions, DEFAULT_OPTIONS
from .export import perfetto_payload, write_perfetto
from .metrics import MetricsRegistry

__all__ = ["ProfileReport", "profile_run"]

#: JSON artifact schema version of :meth:`ProfileReport.metrics_doc`
PROFILE_SCHEMA = 1


def profile_run(
    a,
    b,
    options: AcSpgemmOptions | None = None,
    *,
    matrix_name: str = "",
) -> "ProfileReport":
    """Run ``A @ B`` with full instrumentation and wrap the result."""
    opts = options or DEFAULT_OPTIONS
    if not opts.collect_trace:
        opts = dataclasses.replace(opts, collect_trace=True)
    result = ac_spgemm(a, b, opts)
    return ProfileReport(result=result, options=opts, matrix_name=matrix_name)


@dataclass
class ProfileReport:
    """One instrumented run plus its export surfaces."""

    result: AcSpgemmResult
    options: AcSpgemmOptions
    matrix_name: str = ""

    def registry(self) -> MetricsRegistry:
        """Metrics of this run, labelled with the producing engine."""
        return MetricsRegistry.from_result(self.result, engine=self.options.engine)

    # -- human-readable report ----------------------------------------

    def text(self) -> str:
        """Per-stage profile in the style of the paper's Figure 7."""
        r = self.result
        us = 1e6 / (r.clock_ghz * 1e9)
        total = r.total_cycles
        lines = []
        title = self.matrix_name or f"{r.matrix.rows}x{r.matrix.cols}"
        lines.append(
            f"profile of {title} (engine={self.options.engine}, "
            f"dtype={self.options.value_dtype.name})"
        )
        lines.append(
            f"  output: {r.matrix.nnz} nnz, {r.memory.output_bytes} B; "
            f"total {total * us:.2f} us simulated"
        )
        keys = list(STAGE_KEYS) + (["FB"] if "FB" in r.stage_cycles else [])
        for key in keys:
            cycles = r.stage_cycles.get(key, 0.0)
            pct = 100.0 * cycles / total if total else 0.0
            bar = "#" * int(round(pct / 2))
            lines.append(
                f"  {key:4s} {cycles * us:12.2f} us  {pct:5.1f}%  {bar}"
            )
        lines.append(
            f"  restarts={r.restarts}  chunks={r.n_chunks}  "
            f"blocks={r.n_blocks}  shared_rows={r.shared_rows}  "
            f"mpL={r.multiprocessor_load:.3f}  "
            f"sm_util={r.sm_utilization:.3f}"
        )
        mem = r.memory
        lines.append(
            f"  memory: pool={mem.chunk_pool_bytes} B "
            f"(used {mem.chunk_used_bytes} B, "
            f"{100.0 * mem.used_fraction:.1f}%), "
            f"helpers={mem.helper_bytes} B"
        )
        if r.degraded:
            failure = r.failure or {}
            lines.append(
                f"  DEGRADED: {failure.get('kind', 'unknown')} — "
                f"{failure.get('message', '')}"
            )
        if r.spans is not None:
            lines.append("  span tree:")
            lines.extend(self._span_lines(r.spans, us, total, depth=2))
        return "\n".join(lines)

    def _span_lines(self, span, us, total, depth) -> list[str]:
        pct = 100.0 * span.duration / total if total else 0.0
        line = (
            f"{'  ' * depth}{span.name:<{max(1, 30 - 2 * depth)}s} "
            f"{span.duration * us:12.2f} us  {pct:5.1f}%"
        )
        out = [line]
        for child in span.children:
            out.extend(self._span_lines(child, us, total, depth + 1))
        return out

    # -- file exports -------------------------------------------------

    def trace_payload(self) -> dict:
        """Merged Perfetto JSON object (device timeline + span tree,
        plus per-SM tracks when the device trace was collected)."""
        return perfetto_payload(
            spans=self.result.spans,
            trace=self.result.trace,
            device=self.result.device_trace,
            clock_ghz=self.result.clock_ghz,
        )

    def write_trace(self, path: str | Path) -> Path:
        """Write the validated Perfetto timeline JSON."""
        return write_perfetto(path, self.trace_payload())

    def metrics_doc(self) -> dict:
        """The profile artifact: registry export plus run identity."""
        reg = self.registry().to_json()
        return {
            "bench": "profile",
            "schema": PROFILE_SCHEMA,
            "matrix": self.matrix_name,
            "engine": self.options.engine,
            "dtype": self.options.value_dtype.name,
            "metrics": reg["metrics"],
            "meta": reg["meta"],
        }

    def write_metrics_json(self, path: str | Path) -> Path:
        """Write the JSON metrics artifact (byte-deterministic)."""
        out = Path(path)
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(json.dumps(self.metrics_doc(), indent=2, sort_keys=True))
        return out

    def write_prometheus(self, path: str | Path) -> Path:
        """Write the Prometheus text exposition of the metrics."""
        out = Path(path)
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(self.registry().to_prometheus())
        return out

"""Selector flight recorder: predicted vs. actual cycles per dispatch.

Every adaptive routing decision (:class:`repro.backends.selector.
AdaptiveSelector`) records one *dispatch event*: the per-candidate
predicted cycle counts, the chosen engine, the actual simulated cycles
the routed engine then spent, the prediction error and a per-decision
**regret bound** — ``max(0, actual_chosen - min(predicted))``, an upper
bound on how many cycles a better prediction could have saved under the
model's own estimates (the true regret would need counterfactual runs).

Events land in a bounded in-memory ring (always) and, when a path is
configured, in a rotating JSONL event log.  The log is crash-tolerant
both ways: every event is flushed on write, :meth:`flush` fsyncs (the
serve daemon's SIGTERM drain calls it), and :func:`read_flight_events`
tolerates a torn final line exactly like the campaign shard reader.
Events carry **no wall-clock timestamps** — a replayed request sequence
produces a byte-identical event log, the same determinism contract as
the trace ids.
"""

from __future__ import annotations

import json
import os
import threading
from collections import deque
from pathlib import Path

__all__ = [
    "FlightRecorder",
    "read_flight_events",
    "get_flight_recorder",
    "install_flight_recorder",
]

#: dispatch events kept in the in-memory ring (rolling-error window)
DEFAULT_WINDOW = 128

#: rotation threshold of one JSONL log file
DEFAULT_MAX_BYTES = 4 * 1024 * 1024

#: rotated files kept (``log``, ``log.1`` ... ``log.<n>``)
DEFAULT_MAX_FILES = 3


class FlightRecorder:
    """Thread-safe dispatch-event ring with an optional JSONL log."""

    def __init__(
        self,
        path: str | Path | None = None,
        *,
        window: int = DEFAULT_WINDOW,
        max_bytes: int = DEFAULT_MAX_BYTES,
        max_files: int = DEFAULT_MAX_FILES,
    ):
        self._lock = threading.Lock()
        self._ring: deque[dict] = deque(maxlen=max(1, window))
        self._seq = 0
        self.path = Path(path) if path else None
        self.max_bytes = max(1, int(max_bytes))
        self.max_files = max(1, int(max_files))
        self._fh = None
        if self.path is not None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._fh = open(self.path, "a", encoding="utf-8")

    # -- recording ----------------------------------------------------

    def record(self, event: dict) -> dict:
        """Append one dispatch event; returns it with ``seq`` stamped."""
        with self._lock:
            self._seq += 1
            doc = {"seq": self._seq, **event}
            self._ring.append(doc)
            if self._fh is not None:
                self._fh.write(
                    json.dumps(doc, sort_keys=True, separators=(",", ":"))
                    + "\n"
                )
                self._fh.flush()
                self._rotate_locked()
            return doc

    def _rotate_locked(self) -> None:
        if self._fh is None or self._fh.tell() < self.max_bytes:
            return
        self._fh.close()
        # shift log.<n-1> -> log.<n> ... log -> log.1, dropping the oldest
        oldest = self.path.with_name(f"{self.path.name}.{self.max_files}")
        oldest.unlink(missing_ok=True)
        for i in range(self.max_files - 1, 0, -1):
            src = self.path.with_name(f"{self.path.name}.{i}")
            if src.exists():
                os.replace(src, self.path.with_name(f"{self.path.name}.{i + 1}"))
        os.replace(self.path, self.path.with_name(f"{self.path.name}.1"))
        self._fh = open(self.path, "a", encoding="utf-8")

    # -- introspection ------------------------------------------------

    def events(self) -> list[dict]:
        """Snapshot of the in-memory ring, oldest first."""
        with self._lock:
            return [dict(e) for e in self._ring]

    @property
    def recorded(self) -> int:
        """Total dispatch events recorded over this recorder's life."""
        with self._lock:
            return self._seq

    def prediction_error(self) -> float:
        """Rolling mean relative prediction error over the ring window."""
        with self._lock:
            errs = [
                e["rel_error"] for e in self._ring if "rel_error" in e
            ]
        return sum(errs) / len(errs) if errs else 0.0

    # -- durability ---------------------------------------------------

    def flush(self) -> None:
        """Flush and fsync the event log (the SIGTERM-drain hook)."""
        with self._lock:
            if self._fh is not None:
                self._fh.flush()
                os.fsync(self._fh.fileno())

    def close(self) -> None:
        with self._lock:
            if self._fh is not None:
                self._fh.flush()
                os.fsync(self._fh.fileno())
                self._fh.close()
                self._fh = None


def read_flight_events(path: str | Path) -> list[dict]:
    """Parse one flight-log file, tolerating a torn final line.

    A SIGKILL mid-write can tear at most the last line; every complete
    line before it is still a valid event, so the reader keeps what
    parses and drops a trailing fragment instead of failing the file.
    """
    out: list[dict] = []
    text = Path(path).read_text(encoding="utf-8")
    lines = text.split("\n")
    for i, line in enumerate(lines):
        if not line.strip():
            continue
        try:
            out.append(json.loads(line))
        except json.JSONDecodeError:
            if i == len(lines) - 1:
                break  # torn final line: tolerated by design
            raise
    return out


# -- process-wide default ------------------------------------------------
#
# The selector records into the process-wide recorder so every adaptive
# dispatch is observable even outside the serve daemon; the daemon (or
# the CLI) upgrades it to a file-backed recorder via
# :func:`install_flight_recorder`.

_GLOBAL = FlightRecorder()
_GLOBAL_LOCK = threading.Lock()


def get_flight_recorder() -> FlightRecorder:
    """The process-wide flight recorder (memory-only by default)."""
    return _GLOBAL


def install_flight_recorder(
    path: str | Path | None = None, **kwargs
) -> FlightRecorder:
    """Replace the process-wide recorder (e.g. with a file-backed one)."""
    global _GLOBAL
    with _GLOBAL_LOCK:
        old = _GLOBAL
        _GLOBAL = FlightRecorder(path, **kwargs)
        old.close()
        return _GLOBAL

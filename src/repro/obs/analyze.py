"""Paper-figure analysis of a device trace (``repro analyze``).

Turns one :class:`~repro.obs.device.DeviceTrace` into the evaluation
artifacts of the paper:

* **ESC-iteration histogram** — how many local ESC iterations each block
  needed (Fig. 9's driver of chunk counts);
* **chunks-per-block distribution** — final-pool chunks per ESC block
  (Fig. 9);
* **sort-bit-width distribution** — elements sorted at each radix key
  width, showing the win of dynamic bit reduction (Fig. 10 / §3.2.3);
* **per-SM load imbalance** — busy cycles per SM per stage and the
  max/mean imbalance factor (Table 3's "mpL" from the other side);
* **scratchpad-residency waterline** — per-block scratchpad high-water
  bytes against the device's 48 KiB bound (§3's hard constraint);
* **traffic attribution** — which stage moved which share of the global
  memory traffic (Fig. 7's cost story in counter form).

Everything is computed from the trace alone and then **reconciled
exactly** against the run's other accounting surfaces: per-stage cycle
sums must equal ``result.stage_cycles`` bit-for-bit, attributed counters
must sum to ``result.counters``, each launch's per-SM busy times must
re-derive from its block events, and each trace record must align with
its childless span (same start cycle, duration reproduced with the span
clock's own ``(start + cycles) - start`` arithmetic).  A reconciliation
failure on a non-truncated run raises — the trace is wrong, not the
report.  Truncated (degraded) runs skip the exactness gate for the
adaptive stages, because the result totals cover only the fallback.

The report serialises to deterministic JSON (byte-identical across
engines), a flat ``metrics`` map for ``benchmarks/bench_compare.py``
gating, and a self-contained HTML page with inline-CSS bar charts.
"""

from __future__ import annotations

import html as _html
import json
from pathlib import Path

from ..gpu.counters import TrafficCounters

__all__ = ["ANALYZE_SCHEMA", "AnalysisReport", "analyze_result", "render_html"]

#: JSON schema version of :meth:`AnalysisReport.report_doc`
ANALYZE_SCHEMA = 1

#: counter fields summarised per stage in the traffic-attribution table
_TRAFFIC_FIELDS = (
    "global_bytes_read",
    "global_bytes_written",
    "global_transactions",
    "atomic_ops",
    "sorted_elements",
    "kernel_launches",
    "host_round_trips",
)


class ReconciliationError(ValueError):
    """The device trace disagrees with the run's other accounting."""


#: driver span names that group per-round leaves; normally excluded by
#: the no-children filter, but an empty stage (zero ESC blocks) leaves
#: its group span childless, so they are excluded by name as well
GROUP_SPAN_NAMES = frozenset({"esc", "mm", "pm", "sm"})


def stage_leaf_spans(root) -> list:
    """The childless stage-attributed spans, in chronological order —
    exactly one per device-trace record."""
    return [
        s
        for s in root.walk()
        if not s.children
        and "stage" in s.attrs
        and s.name not in GROUP_SPAN_NAMES
    ]


def _hist(values) -> dict[str, int]:
    """Deterministic value -> count map with string keys."""
    out: dict[int, int] = {}
    for v in values:
        out[int(v)] = out.get(int(v), 0) + 1
    return {str(k): out[k] for k in sorted(out)}


def _imbalance(busy: list[float]) -> float:
    """max/mean over the SMs that a perfectly balanced launch would use
    (all of them); 1.0 for an idle stage."""
    if not busy:
        return 1.0
    mean = sum(busy) / len(busy)
    if mean <= 0.0:
        return 1.0
    return max(busy) / mean


def _counter_sums_by_stage(dtrace) -> dict[str, dict[str, int]]:
    """Record- plus block-level counter deltas, grouped by stage."""
    by_stage: dict[str, dict[str, int]] = {}
    for rec in dtrace.records:
        acc = by_stage.setdefault(rec.stage, {})
        for src in [rec.counters] + [ev.counters for ev in rec.blocks]:
            for name, value in src.items():
                acc[name] = acc.get(name, 0) + value
    return by_stage


def reconcile(result) -> dict:
    """Check the trace against spans, stage cycles, counters and
    per-launch SM busy times.  Returns the reconciliation summary dict;
    raises :class:`ReconciliationError` on any mismatch of a
    non-truncated run."""
    dtrace = result.device_trace
    if dtrace is None:
        raise ValueError("result has no device trace (options.device_trace)")
    summary = {
        "checked": not dtrace.truncated,
        "stage_cycles_exact": False,
        "counters_exact": False,
        "sm_busy_exact": False,
        "spans_exact": False,
    }

    def fail(message: str):
        raise ReconciliationError(message)

    # per-launch SM busy times re-derive from block events even on a
    # truncated trace (each launch record is internally complete)
    for rec in dtrace.launches():
        busy = dtrace.per_sm_busy(rec)
        if busy != list(rec.sm_busy):
            fail(
                f"per-SM busy mismatch in {rec.stage} round "
                f"{rec.round_index}: {busy} != {list(rec.sm_busy)}"
            )
    summary["sm_busy_exact"] = True

    if dtrace.truncated:
        # the result's totals cover only the fallback; the adaptive
        # records are partial by declaration, so only the FB record can
        # be (and is) checked against the stage total
        fb = dtrace.stage_cycle_totals().get("FB", 0.0)
        if fb != result.stage_cycles.get("FB", 0.0):
            fail(f"FB cycles mismatch: {fb} != {result.stage_cycles.get('FB')}")
        return summary

    totals = dtrace.stage_cycle_totals()
    for key, value in result.stage_cycles.items():
        if totals.get(key, 0.0) != value:
            fail(
                f"stage cycle mismatch for {key}: trace "
                f"{totals.get(key, 0.0)!r} != result {value!r}"
            )
    summary["stage_cycles_exact"] = True

    if dtrace.counter_totals() != result.counters:
        # the checked subtraction pinpoints the first bad field
        try:
            delta = result.counters - dtrace.counter_totals()
        except ValueError as exc:
            fail(f"counter mismatch: {exc}")
        fail(f"counter mismatch: unattributed {delta.snapshot()}")
    summary["counters_exact"] = True

    if result.spans is not None:
        leaf_spans = stage_leaf_spans(result.spans)
        if len(leaf_spans) != len(dtrace.records):
            fail(
                f"{len(dtrace.records)} trace records but "
                f"{len(leaf_spans)} stage leaf spans"
            )
        for span, rec in zip(leaf_spans, dtrace.records):
            if span.attrs["stage"] != rec.stage:
                fail(f"span {span.name} is {span.attrs['stage']}, "
                     f"record is {rec.stage}")
            if span.start_cycle != rec.start_cycle:
                fail(f"span {span.name} starts at {span.start_cycle!r}, "
                     f"record at {rec.start_cycle!r}")
            # reproduce the span clock's arithmetic exactly
            if span.duration != (rec.start_cycle + rec.cycles) - rec.start_cycle:
                fail(f"span {span.name} duration {span.duration!r} does not "
                     f"re-derive from record cycles {rec.cycles!r}")
        summary["spans_exact"] = True
    return summary


def analyze_result(
    result, options, *, matrix_name: str = "", engine: str = ""
) -> "AnalysisReport":
    """Build the full analysis report for one traced run.

    ``engine`` overrides the report label when the run came through a
    registered backend rather than ``options.engine`` (a routed
    adaptive run reports the backend, with the dispatch target).
    """
    dtrace = result.device_trace
    if dtrace is None:
        raise ValueError(
            "result has no device trace; run with options.device_trace=True"
        )
    reconciliation = reconcile(result)

    # -- figures ---------------------------------------------------------
    esc_iter_final: dict[int, int] = {}
    scratch_high: list[int] = []
    sort_elements_by_bits: dict[int, int] = {}
    sort_count_by_bits: dict[int, int] = {}
    for rec, ev in dtrace.block_events():
        if rec.stage == "ESC" and not ev.aborted:
            # cumulative across restart rounds: the last round's value is
            # the block's total
            esc_iter_final[ev.worker_id] = max(
                esc_iter_final.get(ev.worker_id, 0), ev.esc_iterations
            )
            scratch_high.append(ev.scratch_high_water)
        for n, bits in ev.sort_log:
            sort_elements_by_bits[bits] = sort_elements_by_bits.get(bits, 0) + n
            sort_count_by_bits[bits] = sort_count_by_bits.get(bits, 0) + 1

    per_sm = dtrace.per_sm_busy_totals()
    imbalance = {stage: _imbalance(busy) for stage, busy in per_sm.items()}

    chunk_counts = [
        count for bid, count in dtrace.chunk_counts.items() if bid >= 0
    ]
    scratch_cap = options.device.scratchpad_bytes
    waterline = {
        "capacity_bytes": scratch_cap,
        "max_bytes": max(scratch_high, default=0),
        "mean_bytes": (
            sum(scratch_high) / len(scratch_high) if scratch_high else 0.0
        ),
        "max_fraction": (
            max(scratch_high, default=0) / scratch_cap if scratch_cap else 0.0
        ),
        "blocks_sampled": len(scratch_high),
    }

    traffic = _counter_sums_by_stage(dtrace)

    figures = {
        "esc_iteration_histogram": _hist(esc_iter_final.values()),
        "chunks_per_block_histogram": _hist(chunk_counts),
        "sort_bit_width_elements": {
            str(k): sort_elements_by_bits[k]
            for k in sorted(sort_elements_by_bits)
        },
        "sort_bit_width_counts": {
            str(k): sort_count_by_bits[k] for k in sorted(sort_count_by_bits)
        },
        "per_sm_busy_cycles": {k: list(v) for k, v in sorted(per_sm.items())},
        "load_imbalance": {k: imbalance[k] for k in sorted(imbalance)},
        "scratchpad_waterline": waterline,
        "stage_cycles": dict(result.stage_cycles),
        "traffic_by_stage": {
            stage: {
                f: traffic[stage].get(f, 0)
                for f in _TRAFFIC_FIELDS
                if traffic[stage].get(f, 0)
            }
            for stage in sorted(traffic)
        },
    }

    # routed adaptive runs carry the selector's dispatch event; it is an
    # optional figure (and HTML section) only — metrics_doc stays fixed
    # so bench_compare seed gates keep their key set
    audit = getattr(result, "routing_audit", None)
    if audit is not None:
        figures["routing_audit"] = {
            k: audit[k] for k in sorted(audit) if k != "seq"
        }

    summary = {
        "records": len(dtrace.records),
        "launches": len(dtrace.launches()),
        "block_events": sum(1 for _ in dtrace.block_events()),
        "num_sms": dtrace.num_sms,
        "esc_blocks": len(esc_iter_final),
        "restarts": result.restarts,
        "n_chunks": result.n_chunks,
        "total_cycles": result.total_cycles,
        "degraded": result.degraded,
        "sm_utilization": result.sm_utilization,
    }

    return AnalysisReport(
        matrix_name=matrix_name,
        engine=engine or options.engine,
        dtype=options.value_dtype.name,
        truncated=dtrace.truncated,
        truncation_reason=dtrace.truncation_reason,
        summary=summary,
        figures=figures,
        reconciliation=reconciliation,
    )


class AnalysisReport:
    """One analysed run: JSON, flat gate metrics and HTML renderings."""

    def __init__(
        self,
        *,
        matrix_name: str,
        engine: str,
        dtype: str,
        truncated: bool,
        truncation_reason: str,
        summary: dict,
        figures: dict,
        reconciliation: dict,
    ) -> None:
        self.matrix_name = matrix_name
        self.engine = engine
        self.dtype = dtype
        self.truncated = truncated
        self.truncation_reason = truncation_reason
        self.summary = summary
        self.figures = figures
        self.reconciliation = reconciliation

    # -- JSON artifacts --------------------------------------------------

    def report_doc(self) -> dict:
        """The full deterministic report document."""
        return {
            "analyze": "device-trace",
            "schema": ANALYZE_SCHEMA,
            "matrix": self.matrix_name,
            "engine": self.engine,
            "dtype": self.dtype,
            "truncated": self.truncated,
            "truncation_reason": self.truncation_reason,
            "summary": self.summary,
            "figures": self.figures,
            "reconciliation": self.reconciliation,
        }

    def metrics_doc(self) -> dict:
        """Flat numeric map for ``bench_compare`` gating.

        Only stable aggregates gate: load-imbalance factors (>= 1.0,
        larger is worse), per-stage traffic bytes, the scratchpad
        waterline and the ESC-iteration tail.  Histogram buckets stay
        out — a legitimate distribution shift would churn the key set.
        """
        metrics: dict[str, float] = {}
        for stage, factor in self.figures["load_imbalance"].items():
            metrics[f"load_imbalance.{stage}"] = factor
        for stage, fields in self.figures["traffic_by_stage"].items():
            read = fields.get("global_bytes_read", 0)
            written = fields.get("global_bytes_written", 0)
            metrics[f"traffic_bytes.{stage}"] = float(read + written)
        wl = self.figures["scratchpad_waterline"]
        metrics["scratchpad_high_water_max"] = float(wl["max_bytes"])
        esc_hist = self.figures["esc_iteration_histogram"]
        metrics["esc_iterations_max"] = float(
            max((int(k) for k in esc_hist), default=0)
        )
        return {
            "bench": "analyze",
            "schema": ANALYZE_SCHEMA,
            "matrix": self.matrix_name,
            "engine": self.engine,
            "metrics": {k: metrics[k] for k in sorted(metrics)},
        }

    def to_json(self) -> str:
        return json.dumps(self.report_doc(), indent=2, sort_keys=True)

    def write_json(self, path: str | Path) -> Path:
        out = Path(path)
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(self.to_json())
        return out

    def write_metrics(self, path: str | Path) -> Path:
        out = Path(path)
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(json.dumps(self.metrics_doc(), indent=2, sort_keys=True))
        return out

    def write_html(self, path: str | Path) -> Path:
        out = Path(path)
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(render_html(self.report_doc()))
        return out

    # -- text summary ----------------------------------------------------

    def text(self) -> str:
        s = self.summary
        lines = [
            f"device-trace analysis of {self.matrix_name or 'run'} "
            f"(engine={self.engine}, dtype={self.dtype})",
            f"  records={s['records']}  launches={s['launches']}  "
            f"block events={s['block_events']}  SMs={s['num_sms']}",
            f"  ESC blocks={s['esc_blocks']}  restarts={s['restarts']}  "
            f"chunks={s['n_chunks']}",
        ]
        imb = self.figures["load_imbalance"]
        lines.append(
            "  load imbalance (max/mean busy): "
            + "  ".join(f"{k}={imb[k]:.3f}" for k in sorted(imb))
        )
        wl = self.figures["scratchpad_waterline"]
        lines.append(
            f"  scratchpad waterline: max {wl['max_bytes']} B of "
            f"{wl['capacity_bytes']} B ({100.0 * wl['max_fraction']:.1f}%)"
        )
        if self.truncated:
            lines.append(f"  TRUNCATED: {self.truncation_reason}")
        ok = all(
            v for k, v in self.reconciliation.items() if k != "checked"
        ) if self.reconciliation.get("checked") else None
        lines.append(
            "  reconciliation: "
            + ("exact" if ok else "skipped (truncated)" if ok is None else "FAILED")
        )
        return "\n".join(lines)


# -- HTML rendering -------------------------------------------------------

_CSS = """
body { font-family: -apple-system, 'Segoe UI', Roboto, sans-serif;
       margin: 2rem auto; max-width: 60rem; color: #1a1a2e; }
h1 { font-size: 1.4rem; } h2 { font-size: 1.1rem; margin-top: 2rem;
     border-bottom: 1px solid #ddd; padding-bottom: .3rem; }
table { border-collapse: collapse; margin: .5rem 0; }
td, th { padding: .25rem .75rem; border: 1px solid #e0e0e8;
         text-align: right; font-variant-numeric: tabular-nums; }
th { background: #f4f4fa; text-align: left; }
.bar-row { display: flex; align-items: center; margin: 2px 0; }
.bar-label { width: 9rem; font-size: .85rem; text-align: right;
             padding-right: .6rem; font-variant-numeric: tabular-nums; }
.bar-track { flex: 1; background: #f0f0f6; }
.bar { height: 14px; background: #4a6fa5; }
.bar.warn { background: #c0392b; }
.bar-value { font-size: .8rem; padding-left: .5rem;
             font-variant-numeric: tabular-nums; }
.badge { display: inline-block; padding: .15rem .6rem; border-radius: 3px;
         font-size: .85rem; color: white; }
.ok { background: #2d7d46; } .bad { background: #c0392b; }
.warn-badge { background: #b07d2b; }
"""


def _bars(items: list[tuple[str, float]], *, fmt="{:,.0f}", warn=None) -> str:
    """A horizontal bar chart as nested divs; deterministic output."""
    peak = max((v for _, v in items), default=0.0)
    rows = []
    for label, value in items:
        width = 100.0 * value / peak if peak else 0.0
        cls = "bar warn" if warn is not None and warn(label, value) else "bar"
        rows.append(
            '<div class="bar-row">'
            f'<span class="bar-label">{_html.escape(label)}</span>'
            f'<span class="bar-track"><span class="{cls}" '
            f'style="width:{width:.2f}%"></span></span>'
            f'<span class="bar-value">{fmt.format(value)}</span></div>'
        )
    return "\n".join(rows) or "<p>(empty)</p>"


def render_html(doc: dict) -> str:
    """Self-contained HTML page for one report document."""
    fig = doc["figures"]
    s = doc["summary"]
    title = f"device-trace analysis — {doc['matrix'] or 'run'}"

    parts = [
        "<!DOCTYPE html>",
        '<html lang="en"><head><meta charset="utf-8">',
        f"<title>{_html.escape(title)}</title>",
        f"<style>{_CSS}</style></head><body>",
        f"<h1>{_html.escape(title)}</h1>",
        f"<p>engine <b>{_html.escape(doc['engine'])}</b>, "
        f"dtype <b>{_html.escape(doc['dtype'])}</b> — "
        f"{s['records']} records, {s['launches']} launches, "
        f"{s['block_events']} block events on {s['num_sms']} SMs; "
        f"{s['restarts']} restarts, {s['n_chunks']} chunks.</p>",
    ]
    if doc["truncated"]:
        parts.append(
            '<p><span class="badge warn-badge">TRUNCATED</span> '
            f"{_html.escape(doc['truncation_reason'])} — adaptive-stage "
            "records are partial; totals cover only the fallback.</p>"
        )
    rec = doc["reconciliation"]
    if rec.get("checked"):
        ok = all(v for k, v in rec.items() if k != "checked")
        parts.append(
            f'<p>reconciliation <span class="badge {"ok" if ok else "bad"}">'
            f'{"EXACT" if ok else "FAILED"}</span> — stage cycles, counters, '
            "per-SM busy times and spans re-derive from the trace.</p>"
        )

    parts.append("<h2>Stage cycles (Fig. 7)</h2>")
    parts.append(
        _bars([(k, v) for k, v in fig["stage_cycles"].items() if v > 0.0])
    )

    parts.append("<h2>Per-SM busy cycles / load imbalance</h2>")
    imb = fig["load_imbalance"]
    parts.append(
        "<table><tr><th>stage</th><th>imbalance (max/mean)</th></tr>"
        + "".join(
            f"<tr><th>{_html.escape(k)}</th><td>{imb[k]:.4f}</td></tr>"
            for k in sorted(imb)
        )
        + "</table>"
    )
    all_busy = fig["per_sm_busy_cycles"].get("ALL", [])
    parts.append(
        _bars([(f"SM {i}", v) for i, v in enumerate(all_busy)])
    )

    parts.append("<h2>ESC iterations per block (Fig. 9)</h2>")
    parts.append(
        _bars(
            [
                (f"{k} iters", float(v))
                for k, v in fig["esc_iteration_histogram"].items()
            ]
        )
    )

    parts.append("<h2>Chunks per ESC block (Fig. 9)</h2>")
    parts.append(
        _bars(
            [
                (f"{k} chunks", float(v))
                for k, v in fig["chunks_per_block_histogram"].items()
            ]
        )
    )

    parts.append("<h2>Sort key widths (Fig. 10)</h2>")
    parts.append(
        _bars(
            [
                (f"{k} bits", float(v))
                for k, v in fig["sort_bit_width_elements"].items()
            ]
        )
    )

    wl = fig["scratchpad_waterline"]
    parts.append("<h2>Scratchpad residency waterline</h2>")
    parts.append(
        f"<p>max {wl['max_bytes']:,} B / mean {wl['mean_bytes']:,.0f} B of "
        f"{wl['capacity_bytes']:,} B capacity "
        f"({100.0 * wl['max_fraction']:.1f}% peak) over "
        f"{wl['blocks_sampled']} block executions.</p>"
    )
    parts.append(
        _bars(
            [
                ("max", float(wl["max_bytes"])),
                ("mean", float(wl["mean_bytes"])),
                ("capacity", float(wl["capacity_bytes"])),
            ],
            warn=lambda label, v: label == "max"
            and wl["capacity_bytes"]
            and v > 0.9 * wl["capacity_bytes"],
        )
    )

    audit = fig.get("routing_audit")
    if audit:
        parts.append("<h2>Routing audit</h2>")
        chosen = audit.get("chosen", "")
        parts.append(
            f"<p>adaptive dispatch chose <b>{_html.escape(str(chosen))}</b>: "
            f"predicted {audit.get('predicted_chosen', 0.0):,.0f} cycles, "
            f"actual {audit.get('actual_cycles', 0.0):,.0f} "
            f"(relative error {100.0 * audit.get('rel_error', 0.0):.1f}%, "
            f"regret bound {audit.get('regret_bound', 0.0):,.0f} cycles)."
            "</p>"
        )
        predicted = audit.get("predicted", {})
        parts.append(
            "<table><tr><th>candidate</th><th>predicted cycles</th></tr>"
            + "".join(
                f"<tr><th>{_html.escape(k)}"
                f"{' *' if k == chosen else ''}</th>"
                f"<td>{predicted[k]:,.0f}</td></tr>"
                for k in sorted(predicted)
            )
            + "</table>"
        )
        rows = [(k, float(predicted[k])) for k in sorted(predicted)]
        if "actual_cycles" in audit:
            rows.append(
                (f"actual ({chosen})", float(audit["actual_cycles"]))
            )
        parts.append(
            _bars(
                rows,
                warn=lambda label, v: label.startswith("actual")
                and v > audit.get("predicted_chosen", v),
            )
        )

    parts.append("<h2>Traffic attribution by stage</h2>")
    traffic = fig["traffic_by_stage"]
    fields = sorted({f for row in traffic.values() for f in row})
    parts.append(
        "<table><tr><th>stage</th>"
        + "".join(f"<th>{_html.escape(f)}</th>" for f in fields)
        + "</tr>"
        + "".join(
            f"<tr><th>{_html.escape(stage)}</th>"
            + "".join(f"<td>{traffic[stage].get(f, 0):,}</td>" for f in fields)
            + "</tr>"
            for stage in sorted(traffic)
        )
        + "</table>"
    )
    parts.append("</body></html>")
    return "\n".join(parts)

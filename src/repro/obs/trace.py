"""Cross-process distributed request tracing with deterministic ids.

One multiply entering ``repro serve`` (or one campaign cell) becomes a
:class:`RequestTrace`: a rooted tree of :class:`TraceSpan` records that
follows the request through admission-queue wait, cache lookup, the
adaptive selection probe, retry/breaker/fallback transitions, the warm
process-pool workers and back.  The design constraints, in order:

**Deterministic ids.**  Trace and span ids never contain wall-clock
time or randomness.  A trace id derives from the request's *content
fingerprint* (the operand matrix fingerprint, or a canonical hash of
the payload when the request never resolves) plus its admission
ordinal; every span id derives from ``(trace_id, parent span id, span
name, per-parent child ordinal)`` via BLAKE2b.  Replaying the same
request sequence therefore reproduces byte-identical ids — the
property ``bench_trace.py`` and CI gate with ``cmp``.  Wall-clock
*durations* are recorded on spans as data (they are what the trace is
for) but never feed id derivation.

**W3C-style propagation.**  The HTTP boundary speaks a
``traceparent``-style header (``00-<trace32>-<span16>-01``): a client
supplied trace id wins (the server joins the caller's trace), while
the server's root span id still derives deterministically.  Process
boundaries (warm-pool workers, campaign shards) receive the explicit
``{"trace_id", "parent_id"}`` pair riding the existing task pickle;
workers derive their span ids from it with the same rules and the
parent grafts the returned spans back onto the live trace.

**Two writer threads, one root.**  The serve handler thread and the
executor thread both write into one trace (a deadline-expired request
is answered by the handler while the executor still finishes the job).
Spans therefore take *explicit* parents rather than an ambient stack,
and the root closes by reference counting: the trace starts with one
reference (the handler) and gains one per hand-off (:meth:`retain`);
the last :meth:`release` closes the root, so every admitted request
yields exactly one rooted, finalized trace — even abandoned ones.

The *simulated-cycle* span trees of :mod:`repro.obs.span` are
untouched (they must stay bit-identical across engines); a finished
pipeline's tree is grafted onto the request trace as a deterministic-id
copy via :meth:`RequestTrace.graft_result`, which also reconciles the
grafted cycle sums against the result's stage counters.
"""

from __future__ import annotations

import hashlib
import math
import re
import threading
import time
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass, field

__all__ = [
    "TraceContext",
    "TraceSpan",
    "RequestTrace",
    "TraceStore",
    "current_trace",
    "current_span",
    "current_trace_attrs",
    "use_trace",
    "trace_note",
    "derive_trace_id",
    "derive_span_id",
    "payload_fingerprint",
]

_TRACEPARENT_RE = re.compile(
    r"^(?P<version>[0-9a-f]{2})-(?P<trace>[0-9a-f]{32})"
    r"-(?P<span>[0-9a-f]{16})-(?P<flags>[0-9a-f]{2})$"
)

#: span names whose grafted copies group per-round leaves (mirrors
#: :data:`repro.obs.analyze.GROUP_SPAN_NAMES`)
_GROUP_SPAN_NAMES = frozenset({"esc", "mm", "pm", "sm"})


def derive_trace_id(content: str, ordinal: int) -> str:
    """32-hex trace id from a content fingerprint and request ordinal."""
    h = hashlib.blake2b(digest_size=16)
    h.update(f"repro-trace|{content}|{ordinal}".encode())
    return h.hexdigest()


def derive_span_id(
    trace_id: str, parent_id: str, name: str, ordinal: int
) -> str:
    """16-hex span id: pure function of position in the trace tree."""
    h = hashlib.blake2b(digest_size=8)
    h.update(f"repro-span|{trace_id}|{parent_id}|{name}|{ordinal}".encode())
    return h.hexdigest()


def payload_fingerprint(payload: dict) -> str:
    """Canonical content hash of an arbitrary JSON-ish request payload.

    The deterministic fallback identity for requests that never resolve
    to an operand matrix (unknown name, malformed body): same payload,
    same fingerprint.
    """
    import json

    text = json.dumps(payload, sort_keys=True, default=str,
                      separators=(",", ":"))
    return hashlib.blake2b(text.encode(), digest_size=16).hexdigest()


@dataclass(frozen=True)
class TraceContext:
    """The propagated identity pair: which trace, which parent span."""

    trace_id: str  # 32 lowercase hex chars
    span_id: str  # 16 lowercase hex chars

    def to_traceparent(self) -> str:
        """W3C-style header value (version 00, sampled flag)."""
        return f"00-{self.trace_id}-{self.span_id}-01"

    @classmethod
    def from_traceparent(cls, header: str | None) -> "TraceContext | None":
        """Parse a ``traceparent`` header; ``None`` on anything malformed."""
        if not header:
            return None
        m = _TRACEPARENT_RE.match(header.strip().lower())
        if m is None:
            return None
        return cls(trace_id=m.group("trace"), span_id=m.group("span"))

    @classmethod
    def for_request(
        cls,
        content: str,
        ordinal: int,
        client: "TraceContext | None" = None,
    ) -> "TraceContext":
        """The root context of one served request.

        A valid client ``traceparent`` wins the trace id (the server
        joins the caller's trace); the root span id always derives
        deterministically from the content hash and ordinal.
        """
        trace_id = client.trace_id if client else derive_trace_id(
            content, ordinal
        )
        parent = client.span_id if client else ""
        return cls(
            trace_id=trace_id,
            span_id=derive_span_id(trace_id, parent, "request", ordinal),
        )

    def child(self, name: str, ordinal: int) -> "TraceContext":
        """Derive a child context (cross-process hand-off helper)."""
        return TraceContext(
            trace_id=self.trace_id,
            span_id=derive_span_id(self.trace_id, self.span_id, name, ordinal),
        )


@dataclass
class TraceSpan:
    """One node of a request trace.

    ``t_start``/``t_end`` are host wall-clock marks (``time.monotonic``)
    and may be ``None`` for grafted simulated-cycle spans, which carry
    ``start_cycle``/``end_cycle`` instead.  Neither feeds id derivation.
    """

    name: str
    trace_id: str
    span_id: str
    parent_id: str | None  # None only for the root span
    attrs: dict = field(default_factory=dict)
    events: list = field(default_factory=list)  # (label, detail) pairs
    t_start: float | None = None
    t_end: float | None = None
    start_cycle: float | None = None
    end_cycle: float | None = None
    status: str = "ok"

    @property
    def open(self) -> bool:
        return self.t_end is None and self.end_cycle is None

    def to_dict(self) -> dict:
        doc = {
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "status": self.status,
            "attrs": {k: self.attrs[k] for k in sorted(self.attrs)},
            "events": [
                {"label": label, "detail": detail}
                for label, detail in self.events
            ],
        }
        if self.t_start is not None:
            doc["t_start"] = self.t_start
            doc["t_end"] = self.t_end
        if self.start_cycle is not None:
            doc["start_cycle"] = self.start_cycle
            doc["end_cycle"] = self.end_cycle
        return doc


class RequestTrace:
    """One request's rooted span tree; thread-safe, explicit parents."""

    def __init__(self, ctx: TraceContext, *, name: str = "request", **attrs):
        self._lock = threading.Lock()
        self.trace_id = ctx.trace_id
        self.root = TraceSpan(
            name=name,
            trace_id=ctx.trace_id,
            span_id=ctx.span_id,
            parent_id=None,
            attrs=dict(attrs),
            t_start=time.monotonic(),
        )
        self.spans: list[TraceSpan] = [self.root]
        self._by_id: dict[str, TraceSpan] = {ctx.span_id: self.root}
        self._child_seq: dict[str, int] = {}
        self._pending = 1  # creator's reference; see retain/release
        self.finalized = False
        self.on_finalize = None  # callable(trace), set by the owner

    # -- span lifecycle ----------------------------------------------

    def _next_ordinal(self, parent_id: str) -> int:
        n = self._child_seq.get(parent_id, 0)
        self._child_seq[parent_id] = n + 1
        return n

    def start_span(
        self, name: str, parent: TraceSpan | None = None, **attrs
    ) -> TraceSpan:
        """Open a child span (of the root unless ``parent`` is given)."""
        with self._lock:
            parent = parent or self.root
            ordinal = self._next_ordinal(parent.span_id)
            span = TraceSpan(
                name=name,
                trace_id=self.trace_id,
                span_id=derive_span_id(
                    self.trace_id, parent.span_id, name, ordinal
                ),
                parent_id=parent.span_id,
                attrs=dict(attrs),
                t_start=time.monotonic(),
            )
            self.spans.append(span)
            self._by_id[span.span_id] = span
            return span

    def end_span(self, span: TraceSpan, status: str = "ok", **attrs) -> None:
        with self._lock:
            if span.t_end is None:
                span.t_end = time.monotonic()
            span.status = status
            span.attrs.update(attrs)

    @contextmanager
    def span(self, name: str, parent: TraceSpan | None = None, **attrs):
        """Scoped child span; tags ``status="error"`` on exceptions."""
        s = self.start_span(name, parent=parent, **attrs)
        try:
            yield s
        except BaseException as exc:
            self.end_span(s, status="error", error=repr(exc))
            raise
        else:
            if s.t_end is None:
                self.end_span(s)

    def add_span(
        self,
        name: str,
        parent: TraceSpan | None = None,
        *,
        t_start: float | None = None,
        t_end: float | None = None,
        status: str = "ok",
        **attrs,
    ) -> TraceSpan:
        """A retroactive, already-closed span (measured before opening)."""
        span = self.start_span(name, parent=parent, **attrs)
        with self._lock:
            span.t_start = t_start if t_start is not None else span.t_start
            span.t_end = t_end if t_end is not None else time.monotonic()
            span.status = status
        return span

    def event(self, span: TraceSpan, label: str, detail: str = "") -> None:
        with self._lock:
            span.events.append((label, str(detail)))

    def note_root(self, **attrs) -> None:
        """Merge attrs onto the root span (outcome, status code...)."""
        with self._lock:
            self.root.attrs.update(attrs)

    # -- cross-process grafts ----------------------------------------

    def attach_remote_span(self, parent: TraceSpan, doc: dict) -> TraceSpan:
        """Graft one worker-returned span (pre-derived id) onto ``parent``.

        The worker derived ``doc["span_id"]`` with the same rules from
        the ``{"trace_id", "parent_id"}`` pair that rode the task
        pickle, so the id is deterministic regardless of which worker
        executed the block.
        """
        with self._lock:
            span = TraceSpan(
                name=str(doc.get("name", "remote")),
                trace_id=self.trace_id,
                span_id=str(doc["span_id"]),
                parent_id=parent.span_id,
                attrs=dict(doc.get("attrs", {})),
                t_start=0.0,
                t_end=float(doc.get("t_host", 0.0)),
                status=str(doc.get("status", "ok")),
            )
            self.spans.append(span)
            self._by_id[span.span_id] = span
            return span

    def graft_result(self, parent: TraceSpan, result) -> dict:
        """Copy a finished pipeline's simulated-cycle span tree under
        ``parent`` with deterministic ids, and reconcile its cycle sums
        against the result's stage counters.

        Returns the reconciliation summary ``{"reconciled": bool,
        "spans": n, "mismatches": [...]}`` and stamps it onto
        ``parent.attrs``.  Degraded results reconcile the fallback
        stage only — the adaptive stage totals cover only the fallback
        by declaration (same rule as ``repro analyze``).
        """
        root = getattr(result, "spans", None)
        summary: dict = {"reconciled": False, "spans": 0, "mismatches": []}
        if root is None:
            summary["mismatches"].append("result has no span tree")
        else:
            grafted = self._graft_tree(parent, root)
            summary["spans"] = grafted
            stage_sums: dict[str, float] = {}
            for s in root.walk():
                if (
                    not s.children
                    and "stage" in s.attrs
                    and s.name not in _GROUP_SPAN_NAMES
                ):
                    stage = str(s.attrs["stage"])
                    stage_sums[stage] = stage_sums.get(stage, 0.0) + s.duration
            stages = (
                ["FB"] if getattr(result, "degraded", False)
                else list(result.stage_cycles)
            )
            for stage in stages:
                want = result.stage_cycles.get(stage, 0.0)
                got = stage_sums.get(stage, 0.0)
                # per-leaf vs per-stage accumulation order differs, so
                # the sums agree only up to float summation error
                if not math.isclose(got, want, rel_tol=1e-9, abs_tol=1e-9):
                    summary["mismatches"].append(
                        f"stage {stage}: grafted {got!r} != result {want!r}"
                    )
            summary["reconciled"] = not summary["mismatches"]
        self.end_span(
            parent,
            reconciled=summary["reconciled"],
            grafted_spans=summary["spans"],
        )
        return summary

    def _graft_tree(self, parent: TraceSpan, span) -> int:
        """Deterministic-id copy of one :class:`repro.obs.span.Span`."""
        with self._lock:
            ordinal = self._next_ordinal(parent.span_id)
            end = (
                span.end_cycle
                if span.end_cycle is not None
                else span.start_cycle
            )
            copy = TraceSpan(
                name=span.name,
                trace_id=self.trace_id,
                span_id=derive_span_id(
                    self.trace_id, parent.span_id, span.name, ordinal
                ),
                parent_id=parent.span_id,
                attrs=dict(span.attrs),
                events=[(e.label, e.detail) for e in span.events],
                start_cycle=span.start_cycle,
                end_cycle=end,
            )
            self.spans.append(copy)
            self._by_id[copy.span_id] = copy
        count = 1
        for child in span.children:
            count += self._graft_tree(copy, child)
        return count

    # -- root lifecycle ----------------------------------------------

    def retain(self) -> None:
        """One more party will write into this trace before it closes."""
        with self._lock:
            self._pending += 1

    def release(self, **root_attrs) -> None:
        """Drop one reference; the last release finalizes the trace."""
        with self._lock:
            if root_attrs:
                self.root.attrs.update(root_attrs)
            self._pending -= 1
            done = self._pending <= 0 and not self.finalized
            if done:
                self.finalized = True
                for span in self.spans:
                    if span is self.root:
                        continue  # the root closes cleanly, below
                    if span.t_end is None and span.end_cycle is None:
                        span.t_end = time.monotonic()
                        span.status = "unclosed"
                self.root.t_end = time.monotonic()
            hook = self.on_finalize if done else None
        if hook is not None:
            hook(self)

    # -- introspection ------------------------------------------------

    def validate(self) -> dict:
        """Rooted-tree check: exactly one root, zero orphan spans."""
        with self._lock:
            roots = [s for s in self.spans if s.parent_id is None]
            orphans = [
                s.span_id
                for s in self.spans
                if s.parent_id is not None and s.parent_id not in self._by_id
            ]
            open_spans = [s.span_id for s in self.spans if s.open]
            return {
                "trace_id": self.trace_id,
                "spans": len(self.spans),
                "roots": len(roots),
                "orphans": len(orphans),
                "orphan_ids": orphans,
                "open_spans": 0 if self.finalized else len(open_spans),
                "rooted": len(roots) == 1 and not orphans,
            }

    def id_manifest(self) -> str:
        """Byte-comparable id listing (creation order): the determinism
        surface — wall-clock data excluded by construction."""
        with self._lock:
            lines = [
                f"{self.trace_id} {s.span_id} "
                f"{s.parent_id or '-'} {s.name}"
                for s in self.spans
            ]
        return "\n".join(lines) + "\n"

    def to_dict(self) -> dict:
        with self._lock:
            return {
                "trace_id": self.trace_id,
                "root_span_id": self.root.span_id,
                "finalized": self.finalized,
                "spans": [s.to_dict() for s in self.spans],
            }

    def perfetto_events(self, *, pid: int = 4) -> list[dict]:
        """Wall-clock request-trace track for the Perfetto payload."""
        events: list[dict] = [
            {
                "name": "process_name",
                "ph": "M",
                "pid": pid,
                "tid": 1,
                "args": {"name": "request trace"},
            },
            {
                "name": "thread_name",
                "ph": "M",
                "pid": pid,
                "tid": 1,
                "args": {"name": f"trace {self.trace_id[:8]}"},
            },
        ]
        with self._lock:
            base = self.root.t_start or 0.0
            for s in self.spans:
                if s.t_start is None:
                    continue
                start = max(0.0, (s.t_start - base)) * 1e6
                end = max(0.0, ((s.t_end or s.t_start) - base)) * 1e6
                events.append(
                    {
                        "name": s.name,
                        "cat": "request",
                        "ph": "X",
                        "ts": start,
                        "dur": max(0.0, end - start),
                        "pid": pid,
                        "tid": 1,
                        "args": {
                            "span_id": s.span_id,
                            **{k: s.attrs[k] for k in sorted(s.attrs)},
                        },
                    }
                )
        return events


class TraceStore:
    """Bounded LRU store of finalized request traces (serve-side)."""

    def __init__(self, capacity: int = 256):
        from collections import OrderedDict

        self.capacity = max(1, int(capacity))
        self._traces: "OrderedDict[str, RequestTrace]" = OrderedDict()
        self._lock = threading.Lock()

    def add(self, trace: RequestTrace) -> None:
        with self._lock:
            self._traces[trace.trace_id] = trace
            self._traces.move_to_end(trace.trace_id)
            while len(self._traces) > self.capacity:
                self._traces.popitem(last=False)

    def get(self, trace_id: str) -> RequestTrace | None:
        with self._lock:
            return self._traces.get(trace_id)

    def ids(self) -> list[str]:
        with self._lock:
            return list(self._traces)

    def __len__(self) -> int:
        with self._lock:
            return len(self._traces)


# -- ambient context ----------------------------------------------------
#
# The pipeline internals (process pool dispatch, the adaptive selector,
# the degraded-fallback abort) see the request's trace through one
# contextvar instead of threading arguments through every engine layer.
# The serve executor activates it around the primary multiply; campaign
# workers activate it around each cell.

_ACTIVE: ContextVar[tuple[RequestTrace, TraceSpan, dict] | None] = ContextVar(
    "repro_active_trace", default=None
)


def current_trace() -> RequestTrace | None:
    """The request trace active in this execution context, if any."""
    active = _ACTIVE.get()
    return active[0] if active else None


def current_span() -> TraceSpan | None:
    """The active parent span for pipeline-internal children."""
    active = _ACTIVE.get()
    return active[1] if active else None


def current_trace_attrs() -> dict:
    """Attributable identity of the active context (empty when none).

    Returns ``{"trace_id", "span_id"}`` plus any extra attrs the
    activator supplied (the serve executor adds the breaker state) —
    the payload :meth:`SpanRecorder.abort` attaches to aborted spans.
    """
    active = _ACTIVE.get()
    if active is None:
        return {}
    trace, span, extra = active
    return {"trace_id": trace.trace_id, "span_id": span.span_id, **extra}


@contextmanager
def use_trace(trace: RequestTrace, span: TraceSpan, **extra):
    """Activate ``(trace, span)`` as the ambient context for a scope."""
    token = _ACTIVE.set((trace, span, extra))
    try:
        yield
    finally:
        _ACTIVE.reset(token)


def trace_note(label: str, detail: str = "") -> None:
    """Attach an event to the active span; no-op outside a trace."""
    active = _ACTIVE.get()
    if active is not None:
        trace, span, _ = active
        trace.event(span, label, detail)

"""repro — a from-scratch reproduction of *Adaptive Sparse Matrix-Matrix
Multiplication on the GPU* (Winter et al., PPoPP'19).

The package implements AC-SpGEMM and all evaluated baselines on a
deterministic simulated GPU.  Quick start::

    import numpy as np
    from repro import CSRMatrix, ac_spgemm

    a = CSRMatrix.from_dense(np.array([[1.0, 0.0], [2.0, 3.0]]))
    result = ac_spgemm(a, a)
    print(result.matrix.to_dense())
    print(result.seconds, result.stage_cycles)

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-versus-measured record of every table and figure.
"""

from .core import AcSpgemmOptions, AcSpgemmResult, ac_spgemm
from .gpu import SMALL_DEVICE, TITAN_XP, DeviceConfig
from .resilience import (
    FaultPlan,
    FaultSpec,
    ReproError,
    RestartBudgetExceeded,
    SanitizerError,
)
from .sparse import (
    COOMatrix,
    CSRMatrix,
    count_intermediate_products,
    load_matrix,
    matrix_stats,
    spgemm_reference,
    squared_operands,
    transpose,
)

__version__ = "1.0.0"

__all__ = [
    "AcSpgemmOptions",
    "AcSpgemmResult",
    "COOMatrix",
    "CSRMatrix",
    "DeviceConfig",
    "FaultPlan",
    "FaultSpec",
    "ReproError",
    "RestartBudgetExceeded",
    "SMALL_DEVICE",
    "SanitizerError",
    "TITAN_XP",
    "__version__",
    "ac_spgemm",
    "count_intermediate_products",
    "load_matrix",
    "matrix_stats",
    "spgemm_reference",
    "squared_operands",
    "transpose",
]

"""Campaign sharding speedup: serial vs multi-worker sweep wallclock.

Runs the same cold-cache campaign twice — once inline (``--workers 1``)
and once sharded across N worker processes — in separate fresh
directories, checks the merged artifacts are byte-identical, and
records both wallclocks.

Usage::

    PYTHONPATH=src python benchmarks/bench_campaign.py [--smoke] \
        [--workers 4] [--out BENCH_pr5.json]

The default scope is the fig09-12 population (``--suite full``: the
synthetic suite plus the named analogues, double precision).  The >= 2x
speedup gate only applies on multi-core hosts: sharding cannot beat the
serial run on a single hardware thread, so the payload records
``cpu_count`` and enforces the target only when at least ``workers``
cores are available.

Like ``bench_wallclock.py`` this is a plain script (no
pytest-benchmark): the quantity of interest is host seconds.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.campaign import CampaignConfig, CampaignRunner  # noqa: E402

SPEEDUP_TARGET = 2.0


def _run_cold(directory: Path, config: CampaignConfig, workers: int) -> tuple[float, bytes]:
    t0 = time.perf_counter()
    result = CampaignRunner(directory, config, workers=workers).run()
    wall = time.perf_counter() - t0
    if result.failed_cells:
        raise SystemExit(f"campaign cells failed: {result.failed_cells[:3]}")
    return wall, result.artifact_path.read_bytes()


def run_campaign_bench(*, suite: str, workers: int, limit=None) -> dict:
    config = CampaignConfig(suite=suite, limit=limit, dtypes=("float64",))
    with tempfile.TemporaryDirectory(prefix="repro-campaign-bench-") as tmp:
        tmp = Path(tmp)
        t_serial, art_serial = _run_cold(tmp / "serial", config, 1)
        t_sharded, art_sharded = _run_cold(tmp / "sharded", config, workers)
    cpu_count = os.cpu_count() or 1
    speedup = t_serial / t_sharded if t_sharded > 0 else float("inf")
    enforced = cpu_count >= workers
    return {
        "bench": "campaign-speedup",
        "suite": suite,
        "limit": limit,
        "cells": len(config.algorithms) * len(config.dtypes) * _n_entries(config),
        "workers": workers,
        "cpu_count": cpu_count,
        "seconds_serial": t_serial,
        "seconds_sharded": t_sharded,
        "speedup": speedup,
        "artifacts_identical": art_serial == art_sharded,
        "speedup_target": SPEEDUP_TARGET,
        "target_enforced": enforced,
        "within_target": (speedup >= SPEEDUP_TARGET) if enforced else None,
    }


def _n_entries(config: CampaignConfig) -> int:
    from repro.campaign import config_entries

    return len(config_entries(config))


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="tiny suite (CI)")
    parser.add_argument("--suite", default=None,
                        help="matrix collection (default: full, or tiny "
                             "with --smoke)")
    parser.add_argument("--limit", type=int, default=None,
                        help="only the first N matrices of the collection")
    parser.add_argument("--workers", type=int, default=4,
                        help="worker processes for the sharded run")
    parser.add_argument("--out", default=None, help="JSON output path")
    args = parser.parse_args(argv)

    suite = args.suite or ("tiny" if args.smoke else "full")
    payload = run_campaign_bench(
        suite=suite, workers=args.workers, limit=args.limit
    )
    path = Path(args.out or "BENCH_pr5.json")
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")

    print(
        f"campaign speedup bench ({suite}, {payload['cells']} cells, "
        f"{payload['cpu_count']} cpus):"
    )
    print(f"  serial  (1 worker) : {payload['seconds_serial']:8.2f} s")
    print(
        f"  sharded ({args.workers} workers): "
        f"{payload['seconds_sharded']:8.2f} s "
        f"({payload['speedup']:.2f}x)"
    )
    print(f"wrote {path}")

    if not payload["artifacts_identical"]:
        print("ERROR: serial and sharded artifacts differ", file=sys.stderr)
        return 1
    if payload["within_target"] is False:
        print(
            f"ERROR: speedup {payload['speedup']:.2f}x below the "
            f"{SPEEDUP_TARGET:.0f}x target on a "
            f"{payload['cpu_count']}-core host",
            file=sys.stderr,
        )
        return 1
    if not payload["target_enforced"]:
        print(
            f"note: {payload['cpu_count']} cpu(s) < {args.workers} workers; "
            "speedup target not enforced on this host"
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

"""Host wall-clock comparison of the execution engines.

Runs ``reference``, ``batched``, ``parallel`` and ``process`` on a
cross-section of the suite, verifies that every engine produces
bit-identical results and identical simulated statistics, and reports
the host-side speedups.  The payload also carries a span-attributed
host hotspot table (top span names by host seconds, joined with their
simulated cycles) so a regression in host time points at the span that
grew, and gates the geometric-mean speedups against the targets in
:data:`repro.bench.wallclock.SPEEDUP_TARGETS` — the batched floor in
full mode, the parallel floor only on multi-core hosts.

Usage::

    PYTHONPATH=src python benchmarks/bench_wallclock.py [--smoke] [--out BENCH_pr6.json]
    PYTHONPATH=src python benchmarks/bench_wallclock.py --trace-overhead [--out BENCH_pr4.json]
    PYTHONPATH=src python benchmarks/bench_wallclock.py --hotspots [--engine batched]

``--trace-overhead`` switches the quantity of interest from engine
speedup to the host cost of the opt-in device trace: every engine runs
each case with ``device_trace`` off and on, and the payload gates the
on/off ratio at the 10% budget (plus byte-identity of the trace across
engines).  ``--hotspots`` prints only the hotspot table for one engine.

Unlike the figure benches this is a plain script (no pytest-benchmark):
the quantity of interest is host seconds, measured directly.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.bench.wallclock import (  # noqa: E402
    run_hotspots,
    run_trace_overhead,
    run_wallclock,
    write_payload,
)


def _print_hotspots(hot: dict) -> None:
    print(
        f"host hotspots ({hot['mode']}, engine={hot['engine']}, "
        f"{hot['total_host_seconds'] * 1e3:.1f} ms total):"
    )
    print(f"  {'span':20s} {'calls':>7s} {'host ms':>9s} {'sim cycles':>14s}")
    for row in hot["top_spans"]:
        print(
            f"  {row['span']:20s} {row['calls']:7d}"
            f" {row['host_seconds'] * 1e3:9.1f}"
            f" {row['sim_cycles']:14.0f}"
        )
    if hot["other_host_seconds"]:
        print(f"  (other spans: {hot['other_host_seconds'] * 1e3:.1f} ms)")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true",
        help="small matrices, single repeat (CI)",
    )
    parser.add_argument(
        "--out", default=None, help="JSON output path"
    )
    parser.add_argument(
        "--repeats", type=int, default=None,
        help="timing repeats per engine (best-of); default 3, 1 for smoke",
    )
    parser.add_argument(
        "--trace-overhead", action="store_true",
        help="measure device-trace host overhead instead of engine speedup",
    )
    parser.add_argument(
        "--hotspots", action="store_true",
        help="print only the span-attributed host hotspot table",
    )
    parser.add_argument(
        "--engine", default="batched",
        help="engine for the --hotspots table (default: batched)",
    )
    args = parser.parse_args(argv)

    if args.hotspots:
        hot = run_hotspots(smoke=args.smoke, engine=args.engine)
        _print_hotspots(hot)
        if args.out:
            print(f"wrote {write_payload(hot, args.out)}")
        return 0

    if args.trace_overhead:
        payload = run_trace_overhead(smoke=args.smoke, repeats=args.repeats)
        path = write_payload(payload, args.out or "BENCH_pr4.json")
        print(f"device-trace overhead bench ({payload['mode']}):")
        for row in payload["cases"]:
            line = f"  {row['case']:24s}"
            for eng in payload["engines"]:
                line += (
                    f" | {eng} {row['seconds_off'][eng] * 1e3:7.1f}"
                    f"->{row['seconds_on'][eng] * 1e3:7.1f} ms"
                    f" ({100.0 * row['overhead'][eng]:+5.1f}%)"
                )
            if not row["trace_identical_across_engines"]:
                line += "  TRACE MISMATCH!"
            print(line)
        print(
            f"total overhead {100.0 * payload['total_overhead']:+.1f}% "
            f"(worst cell {100.0 * payload['max_overhead']:+.1f}%, "
            f"budget {100.0 * payload['overhead_budget']:.0f}%)"
        )
        print(f"wrote {path}")
        if not payload["all_traces_identical"]:
            print("ERROR: device traces differ across engines", file=sys.stderr)
            return 1
        if not payload["within_budget"]:
            print("ERROR: device-trace overhead over budget", file=sys.stderr)
            return 1
        return 0

    payload = run_wallclock(smoke=args.smoke, repeats=args.repeats)
    payload["hotspots"] = run_hotspots(smoke=args.smoke, engine=args.engine)
    path = write_payload(payload, args.out or "BENCH_pr1.json")

    print(
        f"engine wall-clock bench ({payload['mode']}, "
        f"{payload['cpu_count']} cpu):"
    )
    for row in payload["cases"]:
        ref = row["seconds"]["reference"]
        line = f"  {row['case']:24s} ref {ref * 1e3:8.1f} ms"
        for eng, s in row["seconds"].items():
            if eng == "reference":
                continue
            mark = "" if row["identical"][eng] else "  MISMATCH!"
            line += f" | {eng} {s * 1e3:8.1f} ms ({row['speedup'][eng]:.2f}x){mark}"
        print(line)
    for eng, g in payload["geomean_speedup"].items():
        target = payload["speedup_targets"].get(eng)
        gate = (
            f" (target {target:.1f}x"
            f"{', enforced' if eng in payload['targets_enforced'] else ''})"
            if target
            else ""
        )
        print(f"geomean speedup {eng}: {g:.2f}x{gate}")
    _print_hotspots(payload["hotspots"])
    print(f"wrote {path}")

    if not payload["all_identical"]:
        print("ERROR: engines disagree with the reference", file=sys.stderr)
        return 1
    if not payload["within_targets"]:
        print(
            "ERROR: geomean speedup below target for: "
            + ", ".join(
                e
                for e in payload["targets_enforced"]
                if payload["geomean_speedup"][e]
                < payload["speedup_targets"][e]
            ),
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

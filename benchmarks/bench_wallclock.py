"""Host wall-clock comparison of the execution engines.

Runs ``reference``, ``batched`` and ``parallel`` on a cross-section of
the suite, verifies that every engine produces bit-identical results and
identical simulated statistics, and reports the host-side speedups.

Usage::

    PYTHONPATH=src python benchmarks/bench_wallclock.py [--smoke] [--out BENCH_pr1.json]
    PYTHONPATH=src python benchmarks/bench_wallclock.py --trace-overhead [--out BENCH_pr4.json]

``--trace-overhead`` switches the quantity of interest from engine
speedup to the host cost of the opt-in device trace: every engine runs
each case with ``device_trace`` off and on, and the payload gates the
on/off ratio at the 10% budget (plus byte-identity of the trace across
engines).

Unlike the figure benches this is a plain script (no pytest-benchmark):
the quantity of interest is host seconds, measured directly.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.bench.wallclock import (  # noqa: E402
    run_trace_overhead,
    run_wallclock,
    write_payload,
)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true",
        help="small matrices, single repeat (CI)",
    )
    parser.add_argument(
        "--out", default=None, help="JSON output path"
    )
    parser.add_argument(
        "--repeats", type=int, default=None,
        help="timing repeats per engine (best-of); default 3, 1 for smoke",
    )
    parser.add_argument(
        "--trace-overhead", action="store_true",
        help="measure device-trace host overhead instead of engine speedup",
    )
    args = parser.parse_args(argv)

    if args.trace_overhead:
        payload = run_trace_overhead(smoke=args.smoke, repeats=args.repeats)
        path = write_payload(payload, args.out or "BENCH_pr4.json")
        print(f"device-trace overhead bench ({payload['mode']}):")
        for row in payload["cases"]:
            line = f"  {row['case']:24s}"
            for eng in payload["engines"]:
                line += (
                    f" | {eng} {row['seconds_off'][eng] * 1e3:7.1f}"
                    f"->{row['seconds_on'][eng] * 1e3:7.1f} ms"
                    f" ({100.0 * row['overhead'][eng]:+5.1f}%)"
                )
            if not row["trace_identical_across_engines"]:
                line += "  TRACE MISMATCH!"
            print(line)
        print(
            f"total overhead {100.0 * payload['total_overhead']:+.1f}% "
            f"(worst cell {100.0 * payload['max_overhead']:+.1f}%, "
            f"budget {100.0 * payload['overhead_budget']:.0f}%)"
        )
        print(f"wrote {path}")
        if not payload["all_traces_identical"]:
            print("ERROR: device traces differ across engines", file=sys.stderr)
            return 1
        if not payload["within_budget"]:
            print("ERROR: device-trace overhead over budget", file=sys.stderr)
            return 1
        return 0

    payload = run_wallclock(smoke=args.smoke, repeats=args.repeats)
    path = write_payload(payload, args.out or "BENCH_pr1.json")

    print(f"engine wall-clock bench ({payload['mode']}):")
    for row in payload["cases"]:
        ref = row["seconds"]["reference"]
        line = f"  {row['case']:24s} ref {ref * 1e3:8.1f} ms"
        for eng, s in row["seconds"].items():
            if eng == "reference":
                continue
            mark = "" if row["identical"][eng] else "  MISMATCH!"
            line += f" | {eng} {s * 1e3:8.1f} ms ({row['speedup'][eng]:.2f}x){mark}"
        print(line)
    for eng, g in payload["geomean_speedup"].items():
        print(f"geomean speedup {eng}: {g:.2f}x")
    print(f"wrote {path}")

    if not payload["all_identical"]:
        print("ERROR: engines disagree with the reference", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

"""Host wall-clock comparison of the execution engines.

Runs ``reference``, ``batched`` and ``parallel`` on a cross-section of
the suite, verifies that every engine produces bit-identical results and
identical simulated statistics, and reports the host-side speedups.

Usage::

    PYTHONPATH=src python benchmarks/bench_wallclock.py [--smoke] [--out BENCH_pr1.json]

Unlike the figure benches this is a plain script (no pytest-benchmark):
the quantity of interest is host seconds, measured directly.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.bench.wallclock import run_wallclock, write_payload  # noqa: E402


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true",
        help="small matrices, single repeat (CI)",
    )
    parser.add_argument(
        "--out", default="BENCH_pr1.json", help="JSON output path"
    )
    parser.add_argument(
        "--repeats", type=int, default=None,
        help="timing repeats per engine (best-of); default 3, 1 for smoke",
    )
    args = parser.parse_args(argv)

    payload = run_wallclock(smoke=args.smoke, repeats=args.repeats)
    path = write_payload(payload, args.out)

    print(f"engine wall-clock bench ({payload['mode']}):")
    for row in payload["cases"]:
        ref = row["seconds"]["reference"]
        line = f"  {row['case']:24s} ref {ref * 1e3:8.1f} ms"
        for eng, s in row["seconds"].items():
            if eng == "reference":
                continue
            mark = "" if row["identical"][eng] else "  MISMATCH!"
            line += f" | {eng} {s * 1e3:8.1f} ms ({row['speedup'][eng]:.2f}x){mark}"
        print(line)
    for eng, g in payload["geomean_speedup"].items():
        print(f"geomean speedup {eng}: {g:.2f}x")
    print(f"wrote {path}")

    if not payload["all_identical"]:
        print("ERROR: engines disagree with the reference", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

"""Closed-loop load generator and chaos harness for ``repro serve``.

Starts the daemon as a real subprocess, drives it with a seeded,
closed-loop client fleet (each client issues its next request only
after the previous one resolved — the huggingbench shape: bounded
concurrency, no coordinated-omission open loop), injects process-level
chaos (a worker kill mid-run plus a deliberately undersized admission
queue), and asserts the daemon's contract:

* **zero hangs** — every request returns within the client timeout;
* **zero drops** — every request resolves to a typed outcome
  (``success`` / ``degraded`` / ``rejected``), never a connection
  error or a missing response;
* **correctness** — every ``success``/``degraded`` digest equals the
  reference engine's digest for the same matrix (the service is
  bit-identical to offline execution);
* **determinism** — the chaos faults fired are exactly the plan's
  faults, in plan order (scraped from ``/stats``).

Writes ``BENCH_serve.json`` with p50/p99 latency, throughput and
per-outcome counters.

Usage::

    PYTHONPATH=src python benchmarks/bench_serve.py [--smoke] \
        [--clients 4] [--requests 40] [--out BENCH_serve.json]
"""

from __future__ import annotations

import argparse
import json
import os
import random
import re
import signal
import subprocess
import sys
import threading
import time
import urllib.error
import urllib.request
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.campaign.plan import matrix_fingerprint, tiny_entries  # noqa: E402
from repro.core import AcSpgemmOptions, ac_spgemm  # noqa: E402
from repro.resilience.faults import FaultPlan, FaultSpec  # noqa: E402
from repro.sparse import squared_operands  # noqa: E402

#: client-side request timeout — a response slower than this counts as
#: a hang and fails the run (generous: it covers a cold pipeline build)
CLIENT_TIMEOUT_S = 300.0

MATRICES = [e.name for e in tiny_entries()]


def reference_digests(names) -> dict[str, str]:
    """Offline reference-engine digests the service must reproduce."""
    digests = {}
    for entry in tiny_entries():
        if entry.name not in names:
            continue
        a, b = squared_operands(entry.build())
        result = ac_spgemm(a, b, AcSpgemmOptions(engine="reference"))
        digests[entry.name] = matrix_fingerprint(result.matrix)
    return digests


def start_daemon(*, queue: int, executors: int, deadline_ms: float,
                 fault_plan: FaultPlan | None, engine: str):
    """Spawn ``repro serve`` and wait for its listening banner."""
    repo = Path(__file__).resolve().parent.parent
    env = dict(os.environ)
    env["PYTHONPATH"] = str(repo / "src")
    argv = [
        sys.executable, "-m", "repro.cli", "serve",
        "--port", "0",
        "--engine", engine,
        "--executors", str(executors),
        "--queue", str(queue),
        "--deadline-ms", str(deadline_ms),
        "--supervise-interval", "0.2",
        "--shm-prefix", "repro-bench-serve-",
    ]
    if fault_plan is not None:
        argv += ["--fault-plan", fault_plan.to_json()]
    proc = subprocess.Popen(
        argv, stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
        text=True, env=env, cwd=repo,
    )
    banner = proc.stdout.readline()
    match = re.search(r"http://[\d.]+:(\d+)", banner)
    if not match:
        proc.kill()
        raise SystemExit(f"daemon failed to start: {banner!r}")
    return proc, f"http://127.0.0.1:{match.group(1)}"


def post_multiply(base: str, payload: dict) -> dict:
    req = urllib.request.Request(
        base + "/multiply",
        data=json.dumps(payload).encode(),
        headers={"Content-Type": "application/json"},
    )
    try:
        with urllib.request.urlopen(req, timeout=CLIENT_TIMEOUT_S) as resp:
            return json.loads(resp.read())
    except urllib.error.HTTPError as exc:
        return json.loads(exc.read())


def get_json(base: str, path: str) -> dict:
    with urllib.request.urlopen(base + path, timeout=30) as resp:
        return json.loads(resp.read())


def get_text(base: str, path: str) -> str:
    with urllib.request.urlopen(base + path, timeout=30) as resp:
        return resp.read().decode()


def closed_loop(base: str, schedule: list[dict], clients: int):
    """Drive the schedule with a closed-loop client fleet.

    Returns ``(responses, latencies_ms, transport_errors)``; responses
    keeps schedule order so outcomes are attributable per request.
    """
    results: list[dict | None] = [None] * len(schedule)
    latencies: list[float] = []
    errors: list[str] = []
    cursor = [0]
    lock = threading.Lock()

    def client():
        while True:
            with lock:
                i = cursor[0]
                if i >= len(schedule):
                    return
                cursor[0] += 1
            t0 = time.perf_counter()
            try:
                body = post_multiply(base, schedule[i])
            except Exception as exc:  # noqa: BLE001 - counted, not raised
                with lock:
                    errors.append(f"request {i}: {exc!r}")
                continue
            dt = (time.perf_counter() - t0) * 1e3
            with lock:
                results[i] = body
                latencies.append(dt)

    threads = [threading.Thread(target=client) for _ in range(clients)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    return results, latencies, errors


def percentile(sorted_vals: list[float], q: float) -> float:
    if not sorted_vals:
        return 0.0
    idx = min(len(sorted_vals) - 1, int(len(sorted_vals) * q))
    return sorted_vals[idx]


def run_bench(*, clients: int, requests: int, seed: int,
              engine: str) -> dict:
    names = MATRICES[: max(2, min(len(MATRICES), requests))]
    digests = reference_digests(set(names))
    rng = random.Random(seed)
    schedule = [{"matrix": rng.choice(names)} for _ in range(requests)]

    # chaos: kill warm worker 0 when the 2nd executed request starts,
    # drop the exported shm segments at the 4th — both must be absorbed
    plan = FaultPlan(
        seed=seed,
        faults=(
            FaultSpec(kind="worker_kill", at=2, worker=0),
            FaultSpec(kind="shm_drop", at=4),
        ),
    )
    # overload pressure: more clients than executor+queue slots, so the
    # bounded queue must shed (typed 429), never buffer without bound
    queue_size = max(1, clients - 1)
    proc, base = start_daemon(
        queue=queue_size, executors=1, deadline_ms=CLIENT_TIMEOUT_S * 1000,
        fault_plan=plan, engine=engine,
    )
    counters = {"success": 0, "degraded": 0, "rejected": 0, "error": 0}
    digest_mismatches: list[str] = []
    try:
        t0 = time.perf_counter()
        responses, latencies, errors = closed_loop(base, schedule, clients)
        wall = time.perf_counter() - t0

        unresolved = [i for i, r in enumerate(responses) if r is None]
        for i, body in enumerate(responses):
            if body is None:
                continue
            outcome = body.get("outcome", "missing")
            counters[outcome] = counters.get(outcome, 0) + 1
            if outcome in ("success", "degraded") and body.get("result"):
                want = digests[schedule[i]["matrix"]]
                got = body["result"].get("digest")
                if got != want:
                    digest_mismatches.append(
                        f"request {i} ({schedule[i]['matrix']}): "
                        f"{got} != {want}"
                    )
        stats = get_json(base, "/stats")
        metrics_text = get_text(base, "/metrics")
    finally:
        proc.send_signal(signal.SIGTERM)
        out, _ = proc.communicate(timeout=120)
    lat = sorted(latencies)
    fired = [
        {k: v for k, v in f.items()}
        for f in stats.get("faults_fired", [])
    ]
    planned = [f.to_dict() for f in plan.faults]
    payload = {
        "bench": "serve",
        "engine": engine,
        "clients": clients,
        "requests": requests,
        "queue": queue_size,
        "seed": seed,
        "wall_seconds": round(wall, 3),
        "throughput_rps": round(len(lat) / wall, 3) if wall else 0.0,
        "latency_ms": {
            "p50": round(percentile(lat, 0.50), 3),
            "p99": round(percentile(lat, 0.99), 3),
            "max": round(lat[-1], 3) if lat else 0.0,
        },
        "outcomes": counters,
        "transport_errors": errors,
        "unresolved_requests": unresolved,
        "digest_mismatches": digest_mismatches,
        "faults_planned": planned,
        "faults_fired": fired,
        "pool_worker_deaths": stats.get("pool_worker_deaths", 0),
        "daemon_exit_code": proc.returncode,
        "daemon_drained": "drained and stopped" in out,
        "metrics_scraped": "repro_serve_requests_total" in metrics_text,
        "gates": {},
    }
    resolved = sum(counters.values())
    payload["gates"] = {
        "zero_hangs": not errors,
        "zero_drops": not unresolved and resolved == requests,
        "byte_identical": not digest_mismatches,
        "chaos_deterministic": fired == planned,
        "clean_shutdown": proc.returncode == 0 and payload["daemon_drained"],
    }
    payload["ok"] = all(payload["gates"].values())
    return payload


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="CI scope: few clients, few requests")
    parser.add_argument("--clients", type=int, default=4)
    parser.add_argument("--requests", type=int, default=40)
    parser.add_argument("--seed", type=int, default=20260808)
    parser.add_argument("--engine", default="process",
                        choices=("reference", "batched", "parallel", "process"))
    parser.add_argument("--out", default="BENCH_serve.json")
    args = parser.parse_args()
    clients = 3 if args.smoke else args.clients
    requests = 12 if args.smoke else args.requests

    payload = run_bench(clients=clients, requests=requests,
                        seed=args.seed, engine=args.engine)
    Path(args.out).write_text(json.dumps(payload, indent=2) + "\n")
    print(json.dumps(payload["gates"], indent=2))
    print(
        f"serve bench: {payload['outcomes']} over {requests} requests, "
        f"p50={payload['latency_ms']['p50']}ms "
        f"p99={payload['latency_ms']['p99']}ms "
        f"({payload['throughput_rps']} rps); wrote {args.out}"
    )
    if not payload["ok"]:
        print("GATES FAILED", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

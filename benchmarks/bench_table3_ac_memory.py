"""Table 3: AC-SpGEMM memory consumption, restarts and multiprocessor
load per named matrix.

Paper claims reproduced: the chunk memory actually used stays close to
the output-matrix size (u/o near 1 for most matrices), restarts are
rare under the conservative estimate, and multiprocessor load is near
perfect for large inputs.
"""

from __future__ import annotations

from conftest import run_once

from repro.bench import format_table, table3_rows, write_csv

HEADERS = [
    "matrix",
    "helper_MB",
    "chunk_MB",
    "used_MB",
    "used_%",
    "u/o",
    "R",
    "mpL_%",
]


def test_table3_memory(benchmark, named_records, results_dir):
    rows = run_once(benchmark, lambda: table3_rows(named_records))
    write_csv(results_dir / "table3_ac_memory.csv", HEADERS, rows)
    print()
    print(
        format_table(
            HEADERS,
            [
                (r[0],) + tuple(round(x, 2) for x in r[1:6]) + (r[6], round(r[7], 1))
                for r in rows
            ],
            title="Table 3 (AC-SpGEMM memory / restarts / load)",
        )
    )
    assert rows, "AC records with accounting expected"
    # chunk memory used tracks the output size: u/o stays modest
    uo = [r[5] for r in rows]
    assert sum(1 for x in uo if x < 3.0) >= int(0.8 * len(rows))
    # restarts rare under the conservative estimate
    assert sum(r[6] for r in rows) <= 2
    # multiprocessor load is high wherever the device is actually filled
    # (enough chunk data to span many blocks per SM)
    big = [r for r in rows if r[3] > 2.5]
    assert big and all(r[7] > 65.0 for r in big)

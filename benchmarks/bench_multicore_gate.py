"""Conditional multi-core speedup gate for the parallel engine (CI).

On a host with ``os.cpu_count() >= 2`` the parallel engine — whose ESC
rounds dispatch to warm worker processes over shared memory — must beat
the reference engine by ``GATE``x on a mid-size case; on a single core
the process machinery can at best break even, so the gate is skipped
(exit 0) rather than reporting noise.  The matching conditional gate
for the sharded campaign (>= 2x) lives in ``bench_campaign.py``.

This is a real script file (not an inline CI heredoc) on purpose: the
spawn start method re-imports ``__main__`` in every worker, and a
``<stdin>`` main breaks the children — which would silently fall back
to the thread path and fail the gate for the wrong reason.

Usage::

    PYTHONPATH=src python benchmarks/bench_multicore_gate.py
"""

from __future__ import annotations

import os
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

GATE = 1.5
REPEATS = 3


def main() -> int:
    cpu = os.cpu_count() or 1
    if cpu < 2:
        print(f"{cpu} cpu: multi-core parallel-engine gate skipped")
        return 0

    import numpy as np

    from repro import AcSpgemmOptions, ac_spgemm
    from repro.bench.wallclock import tune_allocator
    from repro.matrices.generators import random_uniform
    from repro.sparse.stats import squared_operands

    tune_allocator()
    a, b = squared_operands(random_uniform(2000, 2000, 25.0, seed=6))
    opts = {
        e: AcSpgemmOptions(value_dtype=np.dtype("float64"), engine=e)
        for e in ("reference", "parallel")
    }
    # warm-up: pays the one-off process-pool spawn and operand export
    # outside the timed region (the warm pool persists across runs)
    warm = ac_spgemm(a, b, opts["parallel"])
    best = {e: float("inf") for e in opts}
    for _ in range(REPEATS):
        for engine, o in opts.items():
            t0 = time.perf_counter()
            res = ac_spgemm(a, b, o)
            best[engine] = min(best[engine], time.perf_counter() - t0)
            if res.matrix.values.tobytes() != warm.matrix.values.tobytes():
                print(f"ERROR: {engine} result mismatch", file=sys.stderr)
                return 1
    speedup = best["reference"] / best["parallel"]
    print(
        f"{cpu} cpu: reference {best['reference'] * 1e3:.1f} ms, "
        f"parallel {best['parallel'] * 1e3:.1f} ms -> {speedup:.2f}x "
        f"(gate {GATE:.1f}x)"
    )
    if speedup < GATE:
        print(
            f"ERROR: parallel engine {speedup:.2f}x < {GATE:.1f}x "
            f"on a {cpu}-core host",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

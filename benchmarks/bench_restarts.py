"""§4.3 restart-cost study: webbase analogue with a shrinking chunk pool.

The paper measures 22.0 → 48.6 ms going from 0 to 63 restarts and notes
that "even with 63 restarts we still beat nsparse by a factor of 2x",
i.e. restart cost grows mildly (roughly 2x runtime for ~60 restarts).
This bench reproduces the monotone, mild growth of runtime with restart
count.
"""

from __future__ import annotations

from conftest import run_once

from repro.bench import format_table, restart_study, write_csv

HEADERS = ["pool_fraction", "restarts", "sim_ms", "final_pool_MB"]


def test_restart_cost(benchmark, results_dir):
    rows = run_once(benchmark, restart_study)
    write_csv(results_dir / "restart_study.csv", HEADERS, rows)
    print()
    print(
        format_table(
            HEADERS,
            [(r[0], r[1], round(r[2], 3), round(r[3], 2)) for r in rows],
            title="Restart study (webbase analogue)",
        )
    )
    restarts = [r[1] for r in rows]
    times = [r[2] for r in rows]
    assert restarts[0] == 0 and max(restarts) >= 4
    # runtime grows with restart count ...
    assert times[-1] > times[0]
    # ... but mildly — redoing work bounded by the pool growth schedule
    # (the paper sees ~2.2x at 63 restarts; our growth factor is larger,
    # so restart counts are lower and overhead stays within ~5x)
    assert times[-1] < 5.0 * times[0]

"""Figures 9-12: per-matrix marker plots for the complete test set —
small (a < 42) and large (a >= 42) matrices, float and double.

The underlying sweep comes from the ``full_records`` fixture, which
runs it as a sharded, resumable campaign (:mod:`repro.campaign`) —
shard it across processes with ``REPRO_BENCH_WORKERS=4``; the records
are identical regardless.  The bench emits the full per-matrix GFLOPS
series for all six algorithms as CSV (the data behind the paper's
marker plots) and checks the headline fractions: AC-SpGEMM is the
fastest approach for the large majority of small/sparse matrices and
takes the overall lead on most of the full set (the paper reports 83%).
"""

from __future__ import annotations

from conftest import run_once

from repro.bench import GPU_LINEUP, format_table, fullset_rows, write_csv

HEADERS = ["matrix", "avg_row_len"] + GPU_LINEUP


def _emit(records, dtype, sparse, results_dir):
    label = "small" if sparse else "large"
    rows = fullset_rows(records, dtype, sparse=sparse)
    write_csv(results_dir / f"fig09_12_{dtype}_{label}.csv", HEADERS, rows)
    return rows


def _ac_win_fraction(rows):
    ac_idx = 2 + GPU_LINEUP.index("ac-spgemm")
    wins = sum(1 for r in rows if r[ac_idx] == max(r[2:]))
    return wins / len(rows) if rows else 0.0


def test_fig09_double_small(benchmark, full_records, results_dir):
    rows = run_once(benchmark, lambda: _emit(full_records, "float64", True, results_dir))
    frac = _ac_win_fraction(rows)
    print(f"\nFigure 9 (double, small): {len(rows)} matrices, AC fastest on {100*frac:.0f}%")
    print(format_table(HEADERS, rows[:8], title="first rows"))
    assert frac >= 0.6


def test_fig10_double_large(benchmark, full_records, results_dir):
    rows = run_once(benchmark, lambda: _emit(full_records, "float64", False, results_dir))
    frac = _ac_win_fraction(rows)
    print(f"\nFigure 10 (double, large): {len(rows)} matrices, AC fastest on {100*frac:.0f}%")
    # the paper's dense split: AC leads only ~26-31% there
    assert frac <= 0.7


def test_fig11_float_small(benchmark, full_records, results_dir):
    rows = run_once(benchmark, lambda: _emit(full_records, "float32", True, results_dir))
    frac = _ac_win_fraction(rows)
    print(f"\nFigure 11 (float, small): {len(rows)} matrices, AC fastest on {100*frac:.0f}%")
    assert frac >= 0.6


def test_fig12_float_large(benchmark, full_records, results_dir):
    rows = run_once(benchmark, lambda: _emit(full_records, "float32", False, results_dir))
    print(f"\nFigure 12 (float, large): {len(rows)} matrices")
    assert rows


def test_overall_lead(benchmark, full_records, results_dir):
    """Across the entire set (both splits, double), AC takes the
    performance lead for the majority of matrices (paper: 83%)."""
    def fractions():
        small = fullset_rows(full_records, "float64", sparse=True)
        large = fullset_rows(full_records, "float64", sparse=False)
        return _ac_win_fraction(small + large), len(small) + len(large)

    frac, n = run_once(benchmark, fractions)
    print(f"\nOverall (double): AC fastest on {100*frac:.0f}% of {n} matrices (paper: 83%)")
    assert frac >= 0.55

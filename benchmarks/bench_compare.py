"""Regression diff of two ``BENCH_*.json`` artifacts.

Compares every shared numeric leaf of two bench payloads (a baseline and
a candidate) and flags regressions beyond a relative threshold.  The
primary use is gating on ``repro profile --metrics-out`` artifacts —
their ``"metrics"`` map is flat, simulated-cycle based and therefore
machine-independent — but any JSON payload with numeric leaves works
(nested objects are flattened with dotted keys).

Larger is treated as worse for every metric except the excluded ones:
wall-clock quantities (machine-dependent) and host-side telemetry
(engine-specific by design) are skipped.

Usage::

    python benchmarks/bench_compare.py baseline.json candidate.json \
        [--threshold 0.001] [--fail-on-missing]

Exit status: 0 when no regression exceeds the threshold, 1 otherwise.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

#: substrings of flattened keys that must not gate the comparison:
#: machine-dependent wall-clock values and engine-specific host
#: telemetry.  Deliberately precise — plain "host" would also exclude
#: the deterministic ``host_round_trips`` traffic counter.
EXCLUDE_SUBSTRINGS = ("seconds", "speedup", "wall", "repro_host_ops", "allocator")


def flatten(payload, prefix: str = "") -> dict[str, float]:
    """Numeric leaves of a JSON document as ``dotted.key -> value``."""
    out: dict[str, float] = {}
    if isinstance(payload, dict):
        for k, v in payload.items():
            out.update(flatten(v, f"{prefix}.{k}" if prefix else str(k)))
    elif isinstance(payload, list):
        for i, v in enumerate(payload):
            out.update(flatten(v, f"{prefix}[{i}]"))
    elif isinstance(payload, bool):
        pass  # bools are ints but not metrics
    elif isinstance(payload, (int, float)):
        out[prefix] = float(payload)
    return out


def excluded(key: str) -> bool:
    """True when the key must not participate in the regression gate."""
    return any(s in key for s in EXCLUDE_SUBSTRINGS)


def compare(
    baseline: dict, candidate: dict, threshold: float
) -> tuple[list[dict], list[str], list[str]]:
    """Diff two flattened payloads.

    Returns ``(regressions, improvements, missing)`` where regressions
    are dicts with key/base/cand/ratio, improvements are formatted lines
    and missing lists keys present in only one payload.
    """
    base = {k: v for k, v in flatten(baseline).items() if not excluded(k)}
    cand = {k: v for k, v in flatten(candidate).items() if not excluded(k)}
    regressions: list[dict] = []
    improvements: list[str] = []
    for key in sorted(base.keys() & cand.keys()):
        b, c = base[key], cand[key]
        if b == c:
            continue
        if b == 0:
            delta = float("inf") if c > 0 else -1.0
        else:
            delta = (c - b) / abs(b)
        if delta > threshold:
            regressions.append(
                {"key": key, "baseline": b, "candidate": c, "delta": delta}
            )
        elif delta < -threshold:
            improvements.append(f"  {key}: {b} -> {c} ({delta:+.2%})")
    missing = sorted((base.keys() | cand.keys()) - (base.keys() & cand.keys()))
    return regressions, improvements, missing


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline", help="baseline BENCH_*.json")
    parser.add_argument("candidate", help="candidate BENCH_*.json")
    parser.add_argument(
        "--threshold", type=float, default=0.001,
        help="relative regression tolerance (default 0.1%%)",
    )
    parser.add_argument(
        "--fail-on-missing", action="store_true",
        help="also fail when the two payloads cover different keys",
    )
    args = parser.parse_args(argv)

    baseline = json.loads(Path(args.baseline).read_text())
    candidate = json.loads(Path(args.candidate).read_text())
    regressions, improvements, missing = compare(
        baseline, candidate, args.threshold
    )

    print(
        f"bench_compare: {args.baseline} vs {args.candidate} "
        f"(threshold {args.threshold:.3%})"
    )
    if improvements:
        print(f"improvements ({len(improvements)}):")
        for line in improvements:
            print(line)
    if missing:
        print(f"keys present in only one payload ({len(missing)}):")
        for key in missing:
            print(f"  {key}")
    if regressions:
        print(f"REGRESSIONS ({len(regressions)}):", file=sys.stderr)
        for r in regressions:
            print(
                f"  {r['key']}: {r['baseline']} -> {r['candidate']} "
                f"({r['delta']:+.2%})",
                file=sys.stderr,
            )
        return 1
    if missing and args.fail_on_missing:
        print("FAIL: key coverage differs", file=sys.stderr)
        return 1
    print("no regressions")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

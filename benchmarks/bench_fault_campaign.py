"""Seeded fault-injection campaign across all execution engines.

Runs a battery of fault classes — pool exhaustion (recovered and
budget-exceeded), scratchpad overflow (raised and degraded), scheduler
block aborts, and the adversarial-input corruptions — against the
reference, batched and parallel engines, and checks the resilience
layer's acceptance bar: **the same FaultPlan produces the same
exceptions, the same restart counts and a bit-identical recovered C on
every engine**, and the degradation fallback matches the Gustavson
reference's sparsity pattern.

Usage::

    PYTHONPATH=src python benchmarks/bench_fault_campaign.py --smoke --out BENCH_fault.json

The campaign is fully deterministic in ``--seed``: the JSON artifact
records every plan, so a failing case can be replayed exactly.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import sys
import time
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro import (  # noqa: E402
    AcSpgemmOptions,
    FaultPlan,
    FaultSpec,
    ReproError,
    ac_spgemm,
    spgemm_reference,
)
from repro.gpu import SMALL_DEVICE  # noqa: E402
from repro.matrices import generators as g  # noqa: E402
from repro.resilience import ADVERSARIAL_MODES, corrupt_csr  # noqa: E402
from repro.sparse import CSRMatrix  # noqa: E402

ENGINES = ("reference", "batched", "parallel")


def _operand(seed: int, n: int) -> CSRMatrix:
    rng = np.random.default_rng(seed)
    d = (rng.random((n, n)) < 0.1) * rng.random((n, n))
    return CSRMatrix.from_dense(d)


def _digest(m: CSRMatrix) -> str:
    h = hashlib.sha256()
    for arr in (m.row_ptr, m.col_idx, m.values):
        h.update(np.ascontiguousarray(arr).tobytes())
    return h.hexdigest()[:16]


def _outcome(a, b, opts) -> dict:
    """One engine run reduced to a comparable record."""
    try:
        res = ac_spgemm(a, b, opts)
    except ReproError as exc:
        ctx = exc.context()
        # block ids can legitimately differ in *message* formatting only;
        # the typed context is the comparable part
        return {"error": ctx["kind"], "stage": ctx["stage"],
                "block_id": ctx["block_id"], "restarts": ctx["restarts"]}
    return {
        "restarts": res.restarts,
        "degraded": res.degraded,
        "failure": res.failure["kind"] if res.failure else None,
        "digest": _digest(res.matrix),
    }


def _cases(seed: int, smoke: bool) -> list[dict]:
    """The campaign: name, FaultPlan (or corruption mode), options."""
    rng = np.random.default_rng(seed)
    o1, o2 = sorted(int(x) for x in rng.integers(2, 60, size=2))
    cases = [
        {"name": "pool_exhaust_recovered",
         "plan": FaultPlan.pool_exhaust_at(o1, seed=seed)},
        {"name": "pool_exhaust_double",
         "plan": FaultPlan.pool_exhaust_at(o1, o2 + 60, seed=seed)},
        {"name": "pool_exhaust_budget_raise",
         "plan": FaultPlan.pool_exhaust_at(*range(1, 400), seed=seed),
         "opts": {"max_restarts": 2}},
        {"name": "pool_exhaust_budget_fallback",
         "plan": FaultPlan.pool_exhaust_at(*range(1, 400), seed=seed),
         "opts": {"max_restarts": 2, "on_failure": "fallback"},
         "check_fallback": True},
        {"name": "scratchpad_overflow_raise",
         "plan": FaultPlan.single("scratchpad_overflow", stage="ESC",
                                  round=0, block=0, seed=seed)},
        {"name": "scratchpad_overflow_fallback",
         "plan": FaultPlan.single("scratchpad_overflow", stage="ESC",
                                  round=0, block=0, seed=seed),
         "opts": {"on_failure": "fallback"}, "check_fallback": True},
        {"name": "block_abort",
         "plan": FaultPlan.single("block_abort", stage="ESC", round=0,
                                  block=int(rng.integers(0, 4)), seed=seed)},
        {"name": "block_abort_sanitized",
         "plan": FaultPlan.single("block_abort", stage="ESC", round=0,
                                  block=0, seed=seed),
         "opts": {"sanitize": True}},
    ]
    for mode in ADVERSARIAL_MODES:
        cases.append({"name": f"adversarial_{mode}", "corrupt": mode,
                      "opts": {"sanitize": True}})
    if not smoke:
        cases.append({"name": "overflow_merge_stage",
                      "plan": FaultPlan.single("scratchpad_overflow",
                                               stage="MM", round=0,
                                               block=0, seed=seed),
                      "dense": True})
    return cases


def run_campaign(seed: int, smoke: bool) -> dict:
    n = 50 if smoke else 90
    a = _operand(seed, n)
    dense_a = None
    payload = {"seed": seed, "mode": "smoke" if smoke else "full",
               "engines": list(ENGINES), "cases": []}
    ref_digest = _digest(spgemm_reference(a, a))

    for case in _cases(seed, smoke):
        if case.get("dense"):
            if dense_a is None:
                rngd = np.random.default_rng(seed + 1)
                d = (rngd.random((80, 80)) < 0.2) * rngd.random((80, 80))
                dense_a = CSRMatrix.from_dense(d)
            mat = dense_a
        elif "corrupt" in case:
            mat = corrupt_csr(a, case["corrupt"], seed=seed)
        else:
            mat = a
        opt_kwargs = dict(device=SMALL_DEVICE,
                          chunk_pool_lower_bound_bytes=1 << 20)
        opt_kwargs.update(case.get("opts", {}))
        if "plan" in case:
            opt_kwargs["fault_plan"] = case["plan"]
        per_engine = {}
        for eng in ENGINES:
            opts = AcSpgemmOptions(engine=eng, **opt_kwargs)
            per_engine[eng] = _outcome(mat, mat, opts)
        identical = all(
            per_engine[e] == per_engine[ENGINES[0]] for e in ENGINES[1:]
        )
        record = {
            "name": case["name"],
            "plan": case["plan"].to_dict() if "plan" in case else None,
            "corrupt": case.get("corrupt"),
            "outcome": per_engine[ENGINES[0]],
            "identical_across_engines": identical,
        }
        if case.get("check_fallback"):
            out = per_engine[ENGINES[0]]
            record["fallback_ok"] = bool(
                out.get("degraded") and _fallback_matches_reference(mat, opt_kwargs)
            )
        payload["cases"].append(record)

    payload["all_identical"] = all(
        c["identical_across_engines"] for c in payload["cases"]
    )
    payload["fallbacks_ok"] = all(
        c.get("fallback_ok", True) for c in payload["cases"]
    )
    payload["reference_digest"] = ref_digest
    return payload


def _fallback_matches_reference(mat, opt_kwargs) -> bool:
    """Degraded C has the exact Gustavson pattern, values allclose."""
    from repro.resilience.degrade import fallback_multiply

    opts = AcSpgemmOptions(**opt_kwargs)
    ref = spgemm_reference(mat, mat)
    run = fallback_multiply(mat, mat, opts)
    return (
        np.array_equal(run.matrix.row_ptr, ref.row_ptr)
        and np.array_equal(run.matrix.col_idx, ref.col_idx)
        and run.matrix.allclose(ref, rtol=1e-10)
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="small operands for CI (~seconds)")
    parser.add_argument("--seed", type=int, default=2019,
                        help="campaign seed (PPoPP'19 by default)")
    parser.add_argument("--out", default="BENCH_fault.json",
                        help="JSON artifact path")
    args = parser.parse_args(argv)

    t0 = time.perf_counter()
    payload = run_campaign(args.seed, args.smoke)
    payload["host_seconds"] = round(time.perf_counter() - t0, 3)

    Path(args.out).write_text(json.dumps(payload, indent=2) + "\n")

    print(f"fault campaign ({payload['mode']}, seed {payload['seed']}): "
          f"{len(payload['cases'])} cases x {len(ENGINES)} engines "
          f"in {payload['host_seconds']}s")
    for c in payload["cases"]:
        out = c["outcome"]
        what = out.get("error") or (
            "degraded" if out.get("degraded") else f"restarts={out['restarts']}"
        )
        mark = "ok" if c["identical_across_engines"] else "ENGINES DISAGREE"
        print(f"  {c['name']:32s} {what:28s} {mark}")
    print(f"wrote {args.out}")

    if not payload["all_identical"]:
        print("ERROR: engines disagree on at least one case", file=sys.stderr)
        return 1
    if not payload["fallbacks_ok"]:
        print("ERROR: degraded fallback does not match the reference",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

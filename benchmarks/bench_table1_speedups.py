"""Table 1: relative speedup of AC-SpGEMM over every competitor, split
into highly sparse (a <= 42) and denser matrices, float and double.

The sweep behind the table is the campaign-run ``full_records``
fixture (see ``conftest.py``); set ``REPRO_BENCH_WORKERS`` to shard it.

Paper claims reproduced:
* AC-SpGEMM dominates the highly sparse split (best for ~most matrices,
  h.mean speedups > 1 against every competitor);
* nsparse takes the lead for denser matrices (h.mean < 1 against AC);
* AC remains the fastest *bit-stable* method on the dense side.
"""

from __future__ import annotations

from conftest import run_once

from repro.bench import (
    ac_best_percentage,
    format_table,
    table1_rows,
    write_csv,
)

HEADERS = ["competitor", "n", "min", "max", "h.mean", "%better", "%best"]


def _rows(records, dtype, sparse):
    return [
        (
            s.competitor,
            s.n_matrices,
            round(s.min_speedup, 2),
            round(s.max_speedup, 2),
            round(s.h_mean, 2),
            round(s.pct_better_than_ac, 1),
            round(s.pct_best_overall, 1),
        )
        for s in table1_rows(records, dtype, sparse=sparse)
    ]


def _report(records, dtype, results_dir):
    out = {}
    for sparse in (True, False):
        label = "sparse" if sparse else "dense"
        rows = _rows(records, dtype, sparse)
        out[label] = rows
        write_csv(
            results_dir / f"table1_{dtype}_{label}.csv", HEADERS, rows
        )
        ac_best = ac_best_percentage(records, dtype, sparse=sparse)
        print()
        print(
            format_table(
                HEADERS,
                rows,
                title=f"Table 1 ({dtype}, {'a<=42' if sparse else 'a>42'})",
            )
        )
        print(f"AC-SpGEMM best overall: {ac_best:.0f}%")
    return out


def test_table1_double(benchmark, full_records, results_dir):
    out = run_once(benchmark, lambda: _report(full_records, "float64", results_dir))
    sparse = {r[0]: r for r in out["sparse"]}
    dense = {r[0]: r for r in out["dense"]}
    # AC dominates the sparse split against every competitor
    for comp, row in sparse.items():
        assert row[4] > 1.0, f"{comp} h.mean should favour AC on sparse"
    # nsparse leads on the dense split (h.mean < 1 means nsparse faster)
    assert dense["nsparse"][4] < 1.0
    # AC is the fastest bit-stable method on dense: it beats the other
    # deterministic approaches (bhsparse, rmerge) there
    assert dense["bhsparse"][4] > 1.0
    assert dense["rmerge"][4] > 1.0


def test_table1_float(benchmark, full_records, results_dir):
    out = run_once(benchmark, lambda: _report(full_records, "float32", results_dir))
    for comp, row in {r[0]: r for r in out["sparse"]}.items():
        assert row[4] > 1.0, f"{comp} h.mean should favour AC on sparse"
    assert {r[0]: r for r in out["dense"]}["nsparse"][4] < 1.0

"""Figure 1: average (min/max) non-zeros per row across the collection.

The paper plots mean row length with min/max overlays for the whole
SuiteSparse collection, motivating the design point that most matrices
have average rows shorter than ~200 elements.  This bench regenerates
the series over the synthetic suite plus the named collection.
"""

from __future__ import annotations

from conftest import run_once

from repro.bench import format_table, named_cases, suite_cases, write_csv


def _rows():
    cases = suite_cases() + named_cases()
    data = sorted(
        (
            (
                c.name,
                round(c.stats.mean_row_length, 2),
                c.stats.min_row_length,
                c.stats.max_row_length,
                c.stats.nnz,
            )
            for c in cases
        ),
        key=lambda r: r[1],
    )
    return data


def test_fig01_row_length_distribution(benchmark, results_dir):
    rows = run_once(benchmark, _rows)
    headers = ["matrix", "avg_nnz_per_row", "min", "max", "nnz"]
    write_csv(results_dir / "fig01_row_stats.csv", headers, rows)
    below_200 = sum(1 for r in rows if r[1] <= 200)
    print()
    print(format_table(headers, rows[:10], title="Figure 1 (first 10 by avg row length)"))
    print(f"... {len(rows)} matrices total;"
          f" {100.0 * below_200 / len(rows):.1f}% have avg row length <= 200"
          " (paper: 'the majority ... less than 200 elements')")
    assert below_200 / len(rows) > 0.8

"""§5 future-work extensions, quantified.

1. **Chunk-memory overallocation** — the paper: "An obvious improvement
   for our approach is reducing the overallocation of chunk memory."
   We compare the paper's uniform estimate (100 MB lower bound) with the
   sampling-based estimator on the named collection: allocation shrinks
   by an order of magnitude while restarts stay rare.

2. **Adaptive strategy selection** — "choosing between alternative
   approaches (ESC, hashing, ...) may lead to a further improvement ...
   where other strategies shine."  The hybrid dispatcher should track
   the better of AC-SpGEMM and nsparse on both sides of the crossover.
"""

from __future__ import annotations

import numpy as np
from conftest import run_once

from repro import AcSpgemmOptions, ac_spgemm
from repro.bench import format_table, named_cases, write_csv
from repro.baselines import HybridAdaptive, make_algorithm
from repro.core import estimate_chunk_pool_bytes, sampled_chunk_pool_bytes

EST_HEADERS = [
    "matrix",
    "uniform_pool_MB",
    "sampled_pool_MB",
    "used_MB",
    "restarts_uniform",
    "restarts_sampled",
]


def _estimator_rows():
    rows = []
    for case in named_cases():
        opts = AcSpgemmOptions()
        uniform = estimate_chunk_pool_bytes(case.a, case.b, opts)
        sampled = sampled_chunk_pool_bytes(case.a, case.b, opts)
        r_uni = ac_spgemm(case.a, case.b, opts)
        r_smp = ac_spgemm(case.a, case.b, opts.with_(chunk_pool_bytes=sampled))
        rows.append(
            (
                case.name,
                round(uniform / 1e6, 2),
                round(sampled / 1e6, 2),
                round(r_uni.memory.chunk_used_bytes / 1e6, 2),
                r_uni.restarts,
                r_smp.restarts,
            )
        )
    return rows


def test_sampled_estimator_reduces_overallocation(benchmark, results_dir):
    rows = run_once(benchmark, _estimator_rows)
    write_csv(results_dir / "ext_estimator.csv", EST_HEADERS, rows)
    print()
    print(format_table(EST_HEADERS, rows, title="Chunk-pool estimators"))
    total_uniform = sum(r[1] for r in rows)
    total_sampled = sum(r[2] for r in rows)
    print(f"total allocation: uniform {total_uniform:.0f} MB -> "
          f"sampled {total_sampled:.0f} MB")
    assert total_sampled < total_uniform / 5
    # the tighter pools still avoid restart storms
    assert sum(r[5] for r in rows) <= len(rows)
    # and never undershoot what is actually used by more than growth
    # can recover (every run completed, so this is implicit)


HY_HEADERS = ["matrix", "regime", "ac_s", "nsparse_s", "hybrid_s", "dispatched"]


def _hybrid_rows():
    from repro.matrices import random_uniform

    cases = [
        ("sparse-a5", "sparse", random_uniform(4000, 4000, 5, seed=21)),
        ("sparse-a12", "sparse", random_uniform(1500, 1500, 12, seed=22)),
        ("dense-a64", "dense", random_uniform(1100, 1100, 64, seed=23)),
        ("dense-a96", "dense", random_uniform(700, 700, 96, seed=24)),
    ]
    rows = []
    for name, regime, m in cases:
        ac = make_algorithm("ac-spgemm").multiply(m, m)
        ns = make_algorithm("nsparse").multiply(m, m)
        hy = HybridAdaptive().multiply(m, m)
        rows.append(
            (
                name,
                regime,
                round(ac.seconds * 1e6, 1),
                round(ns.seconds * 1e6, 1),
                round(hy.seconds * 1e6, 1),
                hy.dispatched_to,
            )
        )
    return rows


def test_hybrid_tracks_the_winner(benchmark, results_dir):
    rows = run_once(benchmark, _hybrid_rows)
    write_csv(results_dir / "ext_hybrid.csv", HY_HEADERS, rows)
    print()
    print(format_table(HY_HEADERS, rows, title="Hybrid dispatcher (µs simulated)"))
    for name, regime, ac_s, ns_s, hy_s, target in rows:
        better = min(ac_s, ns_s)
        assert hy_s <= better * 1.1, name  # within dispatch overhead
        if regime == "sparse":
            assert target == "ac-spgemm", name
        else:
            assert target == "nsparse", name

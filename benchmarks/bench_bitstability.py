"""§4.4 bit-stability: AC-SpGEMM (and the other sort/merge approaches)
produce bitwise identical results across runs; hash-based approaches do
not — and AC is the fastest bit-stable method.
"""

from __future__ import annotations

from conftest import run_once

from repro.bench import (
    GPU_LINEUP,
    check_bit_stability,
    format_table,
    named_cases,
    write_csv,
)

HEADERS = ["algorithm", "claims_stable", "observed_stable", "max_value_dev"]


def _study():
    case = next(c for c in named_cases() if c.name == "scircuit")
    return [
        (
            r.algorithm,
            r.claims_stable,
            r.observed_stable,
            f"{r.max_value_deviation:.3e}",
        )
        for r in (
            check_bit_stability(alg, case.a, case.b) for alg in GPU_LINEUP
        )
    ]


def test_bit_stability(benchmark, results_dir):
    rows = run_once(benchmark, _study)
    write_csv(results_dir / "bit_stability.csv", HEADERS, rows)
    print()
    print(format_table(HEADERS, rows, title="Bit stability (scircuit analogue)"))
    by_alg = {r[0]: r for r in rows}
    # claims match observations for every algorithm
    for alg, row in by_alg.items():
        assert row[1] == row[2], f"{alg} stability claim mismatch"
    # sort/merge approaches are stable; hash approaches are not (†)
    for alg in ("ac-spgemm", "bhsparse", "rmerge"):
        assert by_alg[alg][2] is True
    for alg in ("cusparse", "nsparse", "kokkos"):
        assert by_alg[alg][2] is False
        assert float(by_alg[alg][3]) > 0.0, "accumulation-order noise expected"


def test_ac_fastest_bit_stable(benchmark, full_records, results_dir):
    """Across the entire set, AC-SpGEMM is the fastest bit-stable
    approach for virtually all matrices (paper: RMerge better in 1%)."""
    def fractions():
        from collections import defaultdict

        stable = {"ac-spgemm", "bhsparse", "rmerge"}
        cells = defaultdict(dict)
        for r in full_records:
            if r.dtype == "float64" and r.algorithm in stable:
                cells[r.matrix][r.algorithm] = r.seconds
        wins = sum(
            1
            for m, by_alg in cells.items()
            if min(by_alg, key=by_alg.get) == "ac-spgemm"
        )
        return wins / len(cells), len(cells)

    frac, n = run_once(benchmark, fractions)
    print(f"\nAC fastest bit-stable method on {100*frac:.0f}% of {n} matrices")
    assert frac >= 0.8

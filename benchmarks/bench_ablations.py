"""Ablations of AC-SpGEMM's design choices (DESIGN.md / §5).

Toggles: keep-last-row carrying (§3.2.3), dynamic sort-bit reduction
(§3.2.3), long-row pointer chunks (§3.4) and the global load-balancing
granularity (256 vs 512 non-zeros per block, §4).
"""

from __future__ import annotations

from collections import defaultdict

from conftest import run_once

from repro.bench import ablation_rows, format_table, write_csv

HEADERS = ["matrix", "variant", "sim_ms", "gflops", "chunks", "shared_rows"]


def test_ablations(benchmark, results_dir):
    rows = run_once(benchmark, ablation_rows)
    write_csv(results_dir / "ablations.csv", HEADERS, rows)
    print()
    print(
        format_table(
            HEADERS,
            [(r[0], r[1], round(r[2], 3), round(r[3], 2), r[4], r[5]) for r in rows],
            title="AC-SpGEMM design-choice ablations",
        )
    )
    by = defaultdict(dict)
    for r in rows:
        by[r[0]][r[1]] = r

    for name, variants in by.items():
        base = variants["baseline"]
        # disabling keep-last-row writes more chunks
        assert variants["no-keep-last-row"][4] >= base[4], name

    # bit reduction pays off where batches are dense enough that saved
    # radix passes exceed the min/max-tracking cost (its design regime);
    # tiny sparse batches may break even, so assert on the dense cases
    for name in ("poisson3Da", "cant"):
        variants = by[name]
        assert variants["no-bit-reduction"][2] >= variants["baseline"][2], name

    # long-row handling matters where long rows exist: the webbase and
    # language analogues carry rows longer than the ESC capacity
    for name in ("webbase-1M", "language"):
        if name in by:
            variants = by[name]
            assert variants["no-long-rows"][2] >= variants["baseline"][2] * 0.999, name

"""Shared fixtures for the paper-reproduction benchmarks.

The expensive part — running every algorithm over every matrix in both
precisions — happens once per cache version and is memoised on disk
(``results/sweep_cache.json``); the per-figure bench files read from the
shared sweep.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np
import pytest

from repro.bench import (
    GPU_LINEUP,
    default_cache,
    named_cases,
    suite_cases,
    sweep,
)

RESULTS_DIR = Path(__file__).resolve().parent.parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture(scope="session")
def cache():
    return default_cache(RESULTS_DIR)


@pytest.fixture(scope="session")
def full_records(cache):
    """The complete sweep: (suite + named) x GPU line-up x {float32,
    float64}.  Correctness is covered by the test suite, so the sweep
    skips per-cell verification."""
    cases = suite_cases() + named_cases()
    return sweep(
        cases,
        GPU_LINEUP,
        (np.float32, np.float64),
        cache,
        verify=False,
    )


@pytest.fixture(scope="session")
def named_records(cache):
    """Sweep restricted to the Table 2 named collection (double)."""
    return sweep(
        named_cases(), GPU_LINEUP, (np.float64,), cache, verify=False
    )


def run_once(benchmark, fn):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)

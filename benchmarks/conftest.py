"""Shared fixtures for the paper-reproduction benchmarks.

The expensive part — running every algorithm over every matrix in both
precisions — is driven by the sharded campaign runner
(:mod:`repro.campaign`): the full-set sweep behind Figures 9-12 and
Table 1 runs as a resumable campaign whose shards live under
``results/campaign_full`` and whose records are folded into the shared
sweep cache (``results/sweep_cache.json``), so the per-figure bench
files read from one deterministic sweep no matter how many workers (set
``REPRO_BENCH_WORKERS``) produced it.
"""

from __future__ import annotations

import os
from pathlib import Path

import numpy as np
import pytest

from repro.bench import (
    GPU_LINEUP,
    default_cache,
    named_cases,
    sweep,
)
from repro.campaign import CampaignConfig, campaign_records

RESULTS_DIR = Path(__file__).resolve().parent.parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture(scope="session")
def cache():
    return default_cache(RESULTS_DIR)


@pytest.fixture(scope="session")
def full_records(cache):
    """The complete sweep: (suite + named) x GPU line-up x {float32,
    float64}, executed as a resumable campaign.  Correctness is covered
    by the test suite, so the sweep skips per-cell verification."""
    raw = os.environ.get("REPRO_BENCH_WORKERS", "1")
    workers = (os.cpu_count() or 1) if raw == "auto" else int(raw)
    config = CampaignConfig(
        suite="full", dtypes=("float32", "float64"), verify=False
    )
    return campaign_records(
        RESULTS_DIR / "campaign_full",
        config,
        workers=max(workers, 1),
        cache_path=cache.path,
    )


@pytest.fixture(scope="session")
def named_records(cache):
    """Sweep restricted to the Table 2 named collection (double)."""
    return sweep(
        named_cases(), GPU_LINEUP, (np.float64,), cache, verify=False
    )


def run_once(benchmark, fn):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)

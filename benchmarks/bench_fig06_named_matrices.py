"""Figure 6: double-precision GFLOPS on the 16 named matrices.

Paper shape reproduced: AC-SpGEMM leads on the sparse/structured cases
(language, scircuit, asia_osm, webbase, hugebubbles, ...) while the
hash-based nsparse takes over on the high-compaction, long-row cases
(cant, hood, TSC_OPF_1047).
"""

from __future__ import annotations

from conftest import run_once

from repro.bench import GPU_LINEUP, figure6_rows, format_table, write_csv

#: cases the paper singles out as "difficult for our approach" (§4.2):
#: large average row length, many intermediate products, strong
#: compaction.  (TSOPF_RS_b2383 shares the block-dense regime.)
HARD_FOR_AC = {"cant", "hood", "TSC_OPF_1047", "TSOPF_RS_b2383", "landmark"}


def test_fig06_named_gflops(benchmark, named_records, results_dir):
    rows = run_once(benchmark, lambda: figure6_rows(named_records))
    headers = ["matrix"] + GPU_LINEUP
    write_csv(results_dir / "fig06_named_double.csv", headers, rows)
    print()
    print(format_table(headers, rows, title="Figure 6 (double precision GFLOPS)"))

    ac_idx = 1 + GPU_LINEUP.index("ac-spgemm")
    ns_idx = 1 + GPU_LINEUP.index("nsparse")
    ac_wins = [r[0] for r in rows if r[ac_idx] == max(r[1:])]
    print(f"AC-SpGEMM fastest on: {ac_wins}")
    hard = [r for r in rows if r[0] in HARD_FOR_AC]
    losses = [r[0] for r in hard if r[ns_idx] > r[ac_idx]]
    print(f"nsparse beats AC on the paper's hard cases: {losses}")
    assert len(ac_wins) >= 6, "AC should lead on most named matrices"
    assert losses, "nsparse should win at least one high-compaction case"

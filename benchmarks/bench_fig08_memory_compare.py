"""Figure 8: memory consumption of AC-SpGEMM (helper, used chunks,
over-allocation) versus RMerge, bhSparse and nsparse.

Paper claims reproduced: the allocation is conservative (used is a
fraction of allocated), nsparse needs hardly any extra memory, and
RMerge/bhSparse allocate amounts comparable to AC's pool.
"""

from __future__ import annotations

from conftest import run_once

from repro.bench import figure8_rows, format_table, write_csv

HEADERS = [
    "matrix",
    "AC_helper_MB",
    "AC_chunks_used_MB",
    "AC_overalloc_MB",
    "rmerge_MB",
    "bhsparse_MB",
    "nsparse_MB",
]


def test_fig08_memory(benchmark, named_records, results_dir):
    rows = run_once(benchmark, lambda: figure8_rows(named_records))
    write_csv(results_dir / "fig08_memory.csv", HEADERS, rows)
    print()
    print(format_table(HEADERS, rows, title="Figure 8 (memory, MB)"))
    # nsparse requires hardly any additional memory
    assert all(r[6] <= r[3] for r in rows)
    # AC never uses more chunk memory than it allocated
    assert all(r[2] <= r[3] + 1e-9 for r in rows)
    # RMerge/bhSparse allocations are in the same order as AC's pool on
    # the large-temp cases (where the pool exceeds its lower bound)
    big = [r for r in rows if r[3] > 100.0]
    for r in big:
        assert r[4] > 0 and r[5] > 0

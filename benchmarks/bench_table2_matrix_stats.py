"""Table 2: statistics of the named matrices (analogue vs paper).

The analogues are scaled down, so absolute counts differ by design;
what must match is the *regime*: the ordering by average row length and
the compaction character (temp / nnz(C)).
"""

from __future__ import annotations

from conftest import run_once

from repro.bench import format_table, table2_rows, write_csv

HEADERS = [
    "matrix",
    "rows",
    "cols",
    "nnz",
    "len",
    "max",
    "C_nnz",
    "C_len",
    "temp",
    "paper_len",
    "paper_compaction",
    "our_compaction",
]


def test_table2_stats(benchmark, results_dir):
    rows = run_once(benchmark, table2_rows)
    write_csv(results_dir / "table2_matrix_stats.csv", HEADERS, rows)
    print()
    print(format_table(HEADERS, rows, title="Table 2 (analogue vs paper)"))
    by_name = {r[0]: r for r in rows}
    # sparse cases stay sparse, dense stay dense (the a<=42 split)
    for name in ("language", "scircuit", "asia_osm", "webbase-1M", "hugebubbles-00020"):
        assert by_name[name][4] <= 42
    for name in ("cant", "hood", "stat96v2", "TSC_OPF_1047"):
        assert by_name[name][4] > 42
    # the extreme-compaction cases keep their character
    assert by_name["TSC_OPF_1047"][11] > 20
    assert by_name["landmark"][11] > 5
    # ordering by compaction: TSC/landmark/hood/cant at the top end
    assert by_name["language"][11] < by_name["cant"][11]

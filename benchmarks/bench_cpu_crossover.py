"""§4 first paragraph: GPU-vs-CPU crossover around 1e4 non-zeros.

"Very small matrices (<= 1e4 NNZ) are excluded as they do not provide
sufficient parallelism for execution on the GPU and thus CPU
implementations are typically faster.  From about 1e4 NNZ upwards, our
approach outperforms state-of-the-art CPU implementations."
"""

from __future__ import annotations

from conftest import run_once

from repro.bench import cpu_crossover, format_table, write_csv

HEADERS = ["n", "nnz", "temp", "AC_gflops", "CPU_gflops", "speedup_AC_over_CPU"]


def test_cpu_crossover(benchmark, cache, results_dir):
    rows = run_once(benchmark, lambda: cpu_crossover(cache))
    write_csv(results_dir / "cpu_crossover.csv", HEADERS, rows)
    print()
    print(
        format_table(
            HEADERS,
            [(r[0], r[1], r[2], round(r[3], 3), round(r[4], 3), round(r[5], 2)) for r in rows],
            title="CPU crossover",
        )
    )
    small = [r for r in rows if r[1] <= 3_000]
    large = [r for r in rows if r[1] >= 30_000]
    # CPU wins clearly below the crossover, GPU above
    assert any(r[5] < 1.0 for r in small)
    assert all(r[5] > 1.0 for r in large)


def test_gpu_vs_parallel_cpu(benchmark, results_dir):
    """§2 context: bhSparse reports an average GPU speedup of 2.5/2.2
    (single/double) over an Intel MKL CPU implementation.  We measure
    the merge-based GPU baseline and AC-SpGEMM against the MKL-like
    16-thread CPU baseline on medium sparse inputs."""
    import numpy as np

    from repro.baselines import make_algorithm
    from repro.matrices import random_uniform

    def rows():
        out = []
        for dtype, label in ((np.float32, "float"), (np.float64, "double")):
            ratios_bh, ratios_ac = [], []
            # large inputs: the working set exceeds the CPU caches, the
            # regime the published MKL comparisons measure
            for n, avg, seed in ((20000, 6, 31), (15000, 8, 32), (25000, 4, 33)):
                m = random_uniform(n, n, avg, seed=seed)
                mkl = make_algorithm("cpu-mkl").multiply(m, m, dtype=dtype)
                bh = make_algorithm("bhsparse").multiply(m, m, dtype=dtype)
                ac = make_algorithm("ac-spgemm").multiply(m, m, dtype=dtype)
                ratios_bh.append(mkl.seconds / bh.seconds)
                ratios_ac.append(mkl.seconds / ac.seconds)
            out.append(
                (
                    label,
                    round(float(np.mean(ratios_bh)), 2),
                    round(float(np.mean(ratios_ac)), 2),
                )
            )
        return out

    data = run_once(benchmark, rows)
    write_csv(
        results_dir / "gpu_vs_mkl.csv",
        ["precision", "bhsparse_over_mkl", "ac_over_mkl"],
        data,
    )
    print()
    print(format_table(
        ["precision", "bhSparse/MKL", "AC/MKL"], data,
        title="GPU speedup over the 16-thread CPU (paper context: 2.5/2.2)",
    ))
    for _, bh_ratio, ac_ratio in data:
        assert 1.0 < bh_ratio < 10.0  # GPU faster, same order as published
        assert ac_ratio > bh_ratio * 0.8  # AC at least comparable to bhSparse

"""Figure 7: relative runtime of AC-SpGEMM's stages per named matrix.

Stages (paper's labels): global load balancing (GLB), AC-ESC, merge
case assignment (MCC), Multi Merge (MM), Path Merge (PM), Search Merge
(SM) and chunk copy (CC).  Paper claims reproduced: most time is spent
in AC-ESC; GLB is negligible; merge time grows for long-row matrices.
"""

from __future__ import annotations

from conftest import run_once

from repro.bench import figure7_rows, format_table, write_csv
from repro.core import STAGE_KEYS


def test_fig07_stage_breakdown(benchmark, named_records, results_dir):
    rows = run_once(benchmark, lambda: figure7_rows(named_records))
    headers = ["matrix"] + list(STAGE_KEYS)
    write_csv(results_dir / "fig07_stage_breakdown.csv", headers, rows)
    print()
    print(
        format_table(
            headers,
            [(r[0],) + tuple(round(x, 3) for x in r[1:]) for r in rows],
            title="Figure 7 (relative stage runtime)",
        )
    )
    glb_idx = 1 + STAGE_KEYS.index("GLB")
    esc_idx = 1 + STAGE_KEYS.index("ESC")
    # "global load balancing is negligible"
    assert all(r[glb_idx] < 0.12 for r in rows)
    # "spending most time in AC-ESC" for the majority of matrices
    esc_dominant = sum(1 for r in rows if r[esc_idx] >= max(r[1:]))
    assert esc_dominant >= len(rows) // 2

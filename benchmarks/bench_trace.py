"""Trace-completeness, id-determinism and overhead gates for tracing.

Drives an in-process :class:`repro.serve.ServeCore` through every
``POST /multiply`` outcome class — success, cache hit, 404, 400,
worker-crash-retried, degraded fallback, deadline-exceeded (504) and
queue-rejected (429), with a ``request_delay`` chaos fault armed — and
asserts the distributed-tracing contract:

* **completeness** — every handled request resolves to exactly one
  rooted, finalized trace: zero orphan spans, zero spans left open,
  and every executed success reconciles its grafted cycle sums against
  the result's stage counters;
* **determinism** — the full scenario suite run twice produces
  byte-identical trace/span id manifests (ids derive from content
  fingerprints and admission ordinals, never wall-clock or RNG);
* **overhead** — the host cost of tracing (trace + ambient context +
  graft + release around the pipeline) stays within 10% of the bare
  pipeline;
* **selector audit** — every adaptive dispatch leaves one flight-
  recorder event carrying predictions for all candidates, the chosen
  engine, the realised cycles and the per-decision regret bound.

Writes ``BENCH_trace.json``; ``--ids-out`` additionally writes the id
manifests alone so CI can ``cmp`` two independent runs.

Usage::

    PYTHONPATH=src python benchmarks/bench_trace.py [--smoke] \
        [--out BENCH_trace.json] [--ids-out trace_ids.json]
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
import threading
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.campaign.plan import tiny_entries  # noqa: E402
from repro.core import AcSpgemmOptions, ac_spgemm  # noqa: E402
from repro.obs import (  # noqa: E402
    RequestTrace,
    TraceContext,
    read_flight_events,
    use_trace,
)
from repro.resilience.errors import WorkerCrashed  # noqa: E402
from repro.resilience.faults import FaultPlan, FaultSpec  # noqa: E402
from repro.serve import ServeConfig, ServeCore  # noqa: E402
from repro.sparse import squared_operands  # noqa: E402

#: generous poll ceiling for the staged 429 scenario
SETTLE_TIMEOUT_S = 30.0


def _core(multiply=None, **overrides) -> ServeCore:
    defaults = dict(
        engine="reference",
        backend="adaptive",
        executors=1,
        max_queue=4,
        default_deadline_ms=60_000.0,
        retries=2,
        backoff_base_ms=1.0,
        backoff_cap_ms=2.0,
        supervise_interval_s=0.2,
        shm_prefix="repro-bench-trace-",
    )
    defaults.update(overrides)
    return ServeCore(ServeConfig(**defaults), multiply=multiply)


def _wait(predicate, what: str) -> None:
    deadline = time.monotonic() + SETTLE_TIMEOUT_S
    while not predicate():
        if time.monotonic() > deadline:
            raise SystemExit(f"timed out waiting for {what}")
        time.sleep(0.005)


def _harvest(core: ServeCore, scenario: str, bodies: list[dict]) -> list[dict]:
    """Per-request trace records, taken after the core drained."""
    records = []
    for body in bodies:
        trace = core.traces.get(body.get("trace_id", ""))
        record = {
            "scenario": scenario,
            "outcome": body.get("outcome", ""),
            "status": body.get("status", 200),
            "has_identity": bool(
                body.get("request_id")
                and body.get("trace_id")
                and body.get("traceparent")
            ),
            "trace_found": trace is not None,
        }
        if trace is not None:
            v = trace.validate()
            execute = next(
                (s for s in trace.spans if s.name == "execute"), None
            )
            record.update(
                finalized=trace.finalized,
                rooted=v["rooted"],
                orphans=v["orphans"],
                open_spans=v["open_spans"],
                spans=len(trace.spans),
                reconciled=(
                    execute.attrs.get("reconciled")
                    if execute is not None
                    else None
                ),
                manifest=trace.id_manifest(),
            )
        records.append(record)
    return records


def run_scenarios(flight_log: Path) -> tuple[list[dict], dict]:
    """One pass over every outcome class; returns (records, routing)."""
    records: list[dict] = []

    # -- sequential mixed traffic with a chaos delay fault -------------
    plan = FaultPlan(
        faults=(FaultSpec(kind="request_delay", at=1, delay_ms=5.0),)
    )
    core = _core(fault_plan=plan, flight_log=str(flight_log))
    try:
        client = TraceContext.for_request("bench-trace-client", 1)
        bodies = [
            core.handle(
                {"matrix": "tiny-uniform"},
                traceparent=client.to_traceparent(),
            ),
            core.handle({"matrix": "tiny-uniform"}),  # content cache hit
            core.handle({"matrix": "tiny-grid2d"}),
            core.handle({"matrix": "no-such-matrix"}),  # 404
            core.handle({"matrix": "tiny-uniform", "dtype": "int8"}),  # 400
        ]
        routing = core.stats()["routing"]
        faults_fired = core.stats()["faults_fired"]
    finally:
        core.close(drain=True)
    records += _harvest(core, "sequential", bodies)
    routing = dict(routing, faults_fired=faults_fired)

    # -- transient worker crash absorbed by one retry ------------------
    calls = {"n": 0}

    def flaky(a, b, options):
        calls["n"] += 1
        if calls["n"] == 1:
            raise WorkerCrashed("bench chaos", stage="ESC")
        return ac_spgemm(a, b, options)

    core = _core(multiply=flaky)
    try:
        bodies = [core.handle({"matrix": "tiny-uniform"})]
    finally:
        core.close(drain=True)
    records += _harvest(core, "retried", bodies)

    # -- persistent crashes exhaust retries: degraded fallback ---------
    def always(a, b, options):
        raise WorkerCrashed("bench chaos", stage="ESC")

    core = _core(multiply=always, retries=1)
    try:
        bodies = [core.handle({"matrix": "tiny-uniform"})]
    finally:
        core.close(drain=True)
    records += _harvest(core, "degraded", bodies)

    # -- requester deadline expires while the executor finishes --------
    def slow(a, b, options):
        time.sleep(0.3)
        return ac_spgemm(a, b, options)

    core = _core(multiply=slow)
    try:
        bodies = [core.handle({"matrix": "tiny-uniform", "deadline_ms": 25})]
    finally:
        core.close(drain=True)  # executor still finishes + finalizes
    records += _harvest(core, "deadline", bodies)

    # -- bounded queue sheds: staged admissions make the 429 ordinal
    #    deterministic (1 executing, 2 queued, 3 rejected) -------------
    gate = threading.Event()
    started = threading.Event()

    def gated(a, b, options):
        started.set()  # the executor definitely holds request 1 now
        gate.wait(SETTLE_TIMEOUT_S)
        return ac_spgemm(a, b, options)

    core = _core(multiply=gated, max_queue=1)
    try:
        bodies = [None, None, None]

        def fire(i):
            bodies[i] = core.handle(
                {"matrix": "tiny-uniform", "deadline_ms": 30_000}
            )

        t1 = threading.Thread(target=fire, args=(0,))
        t1.start()
        # the admission ordinal is taken before the enqueue, so stats
        # alone cannot prove request 1 left the queue — the multiply
        # hook can
        _wait(started.is_set, "first request to reach the executor")
        t2 = threading.Thread(target=fire, args=(1,))
        t2.start()
        _wait(
            lambda: core.stats()["queue_depth"] == 1,
            "second request to fill the queue",
        )
        fire(2)  # queue full: synchronous 429
        gate.set()
        t1.join()
        t2.join()
    finally:
        gate.set()
        core.close(drain=True)
    records += _harvest(core, "rejected", bodies)
    return records, routing


def completeness(records: list[dict]) -> dict:
    """The per-request contract, aggregated."""
    total = len(records)
    complete = sum(
        1
        for r in records
        if r["has_identity"]
        and r["trace_found"]
        and r.get("finalized")
        and r.get("rooted")
        and r.get("orphans") == 0
        and r.get("open_spans") == 0
    )
    orphans = sum(r.get("orphans", 0) for r in records)
    unreconciled = [
        f"{r['scenario']}/{r['outcome']}"
        for r in records
        if r["outcome"] == "success"
        and r.get("spans", 0) > 3  # executed, not a cache hit
        and r.get("reconciled") is not True
    ]
    outcomes: dict[str, int] = {}
    for r in records:
        key = f"{r['scenario']}:{r['outcome'] or r['status']}"
        outcomes[key] = outcomes.get(key, 0) + 1
    return {
        "requests": total,
        "complete_traces": complete,
        "completeness_pct": round(100.0 * complete / total, 2) if total else 0.0,
        "orphan_spans": orphans,
        "unreconciled_successes": unreconciled,
        "outcomes": dict(sorted(outcomes.items())),
    }


def measure_overhead(reps: int) -> dict:
    """Host cost of tracing around the pipeline (min-of-3 sums)."""
    entry = next(e for e in tiny_entries() if e.name == "tiny-uniform")
    a, b = squared_operands(entry.build())
    opts = AcSpgemmOptions(engine="reference")
    ac_spgemm(a, b, opts)  # warm every lazy import/cache first

    def plain_once():
        ac_spgemm(a, b, opts)

    def traced_once():
        trace = RequestTrace(TraceContext.for_request("bench-overhead", 1))
        execute = trace.start_span("execute")
        attempt = trace.start_span("attempt", parent=execute, attempt=1)
        with use_trace(trace, attempt, breaker="closed"):
            result = ac_spgemm(a, b, opts)
        trace.end_span(attempt)
        trace.graft_result(execute, result)
        trace.release(outcome="success")

    def sample(fn) -> float:
        t0 = time.perf_counter()
        for _ in range(reps):
            fn()
        return time.perf_counter() - t0

    # interleave the two variants so drift (frequency scaling, page
    # cache, background load) hits both alike; keep the best of each
    plain, traced = float("inf"), float("inf")
    for _ in range(5):
        plain = min(plain, sample(plain_once))
        traced = min(traced, sample(traced_once))
    overhead_pct = 100.0 * (traced - plain) / plain if plain else 0.0
    return {
        "reps": reps,
        "plain_s": round(plain, 4),
        "traced_s": round(traced, 4),
        "overhead_pct": round(overhead_pct, 2),
    }


def audit_table(flight_log: Path) -> list[dict]:
    events = []
    for path in sorted(flight_log.parent.glob(flight_log.name + "*")):
        events += read_flight_events(path)
    events.sort(key=lambda e: e["seq"])
    return [
        {
            "seq": e["seq"],
            "chosen": e["chosen"],
            "predicted": e["predicted"],
            "predicted_chosen": e["predicted_chosen"],
            "actual_cycles": e["actual_cycles"],
            "rel_error": e["rel_error"],
            "regret_bound": e["regret_bound"],
            "trace_id": e.get("trace_id", ""),
        }
        for e in events
    ]


def run_bench(*, reps: int) -> tuple[dict, list]:
    with tempfile.TemporaryDirectory(prefix="repro-bench-trace-") as tmp:
        flight_a = Path(tmp) / "flight_a.jsonl"
        flight_b = Path(tmp) / "flight_b.jsonl"
        records_a, routing = run_scenarios(flight_a)
        records_b, _ = run_scenarios(flight_b)
        table = audit_table(flight_a)
        table_b = audit_table(flight_b)

    manifests_a = [r.get("manifest") for r in records_a]
    manifests_b = [r.get("manifest") for r in records_b]
    ids_a = json.dumps(manifests_a, sort_keys=True)
    ids_b = json.dumps(manifests_b, sort_keys=True)

    comp = completeness(records_a)
    overhead = measure_overhead(reps)
    audited = all(
        set(e["predicted"]) and e["rel_error"] is not None for e in table
    )
    payload = {
        "bench": "trace",
        "completeness": comp,
        "determinism": {
            "runs": 2,
            "ids_identical": ids_a == ids_b,
            "flight_identical": json.dumps(table) == json.dumps(table_b),
        },
        "overhead": overhead,
        "selector_audit": {
            "dispatches": routing["dispatches"],
            "recorded_events": len(table),
            "prediction_error": routing["prediction_error"],
            "table": table,
        },
        "chaos": {"faults_fired": routing["faults_fired"]},
        "gates": {},
    }
    payload["gates"] = {
        "trace_completeness_100pct": comp["completeness_pct"] == 100.0,
        "zero_orphans": comp["orphan_spans"] == 0,
        "grafts_reconcile": not comp["unreconciled_successes"],
        "ids_deterministic": payload["determinism"]["ids_identical"]
        and payload["determinism"]["flight_identical"],
        "overhead_within_10pct": overhead["overhead_pct"] <= 10.0,
        "every_dispatch_audited": (
            routing["dispatches"] == len(table) and len(table) > 0 and audited
        ),
        "chaos_fault_fired": len(routing["faults_fired"]) == 1,
    }
    payload["ok"] = all(payload["gates"].values())
    return payload, manifests_a


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="CI scope: fewer overhead reps")
    parser.add_argument("--reps", type=int, default=20,
                        help="pipeline executions per overhead sample")
    parser.add_argument("--out", default="BENCH_trace.json")
    parser.add_argument("--ids-out", default=None,
                        help="also write the id manifests alone (CI cmp)")
    args = parser.parse_args()
    reps = 5 if args.smoke else args.reps

    payload, manifests = run_bench(reps=reps)
    Path(args.out).write_text(json.dumps(payload, indent=2) + "\n")
    if args.ids_out:
        Path(args.ids_out).write_text(
            json.dumps(manifests, indent=2, sort_keys=True) + "\n"
        )
    print(json.dumps(payload["gates"], indent=2))
    comp = payload["completeness"]
    print(
        f"trace bench: {comp['complete_traces']}/{comp['requests']} complete "
        f"traces ({comp['completeness_pct']}%), "
        f"overhead {payload['overhead']['overhead_pct']}%, "
        f"{payload['selector_audit']['recorded_events']} dispatches audited; "
        f"wrote {args.out}"
    )
    if not payload["ok"]:
        print("GATES FAILED", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

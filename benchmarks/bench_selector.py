"""Selection-accuracy bench: adaptive routing vs per-matrix oracle.

Runs every candidate engine (always-ESC ``ac-spgemm``, always-hash
``hash-spgemm`` and ``hashmap-spgemm``) plus the ``adaptive`` selector
over the tiny + synthetic-suite matrices and grades the selector
against the per-matrix oracle (the candidate with the fewest measured
cycles).  Doubles as the registry smoke: every engine's device trace
must reconcile exactly on the tiny set, and every engine advertising
``bit_stable=True`` must be byte-identical to the reference pipeline.

Gates (the PR's acceptance criteria):

* the adaptive selector picks the per-matrix oracle engine on >= 80%
  of the matrices;
* on the mismatches the routed engine never loses more than 10%
  cycles to the oracle engine (routing regret).

The inspection probe is a constant per-multiply cost paid on matches
and mismatches alike, so it is reported separately
(``probe_overhead`` per row, ``mean_probe_overhead`` in the summary)
rather than being folded into the mismatch regret.

Writes ``BENCH_selector.json`` with per-matrix rows and the summary.

Usage::

    PYTHONPATH=src python benchmarks/bench_selector.py [--smoke] \
        [--out BENCH_selector.json]
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.backends import available_backends, get_backend, run_backend  # noqa: E402
from repro.campaign.plan import tiny_entries  # noqa: E402
from repro.core import AcSpgemmOptions, ac_spgemm  # noqa: E402
from repro.matrices.suite import suite_entries  # noqa: E402
from repro.obs.analyze import reconcile  # noqa: E402
from repro.sparse import squared_operands  # noqa: E402

CANDIDATES = ("ac-spgemm", "hash-spgemm", "hashmap-spgemm")

#: acceptance gates
MIN_MATCH_RATE = 0.80
MAX_MISMATCH_LOSS = 0.10


def entry_list(smoke: bool):
    """Tiny set plus the synthetic suite (thinned in smoke mode)."""
    entries = list(tiny_entries())
    suite = list(suite_entries())
    if smoke:
        suite = suite[::8]  # stratified: every family stays represented
    return entries + suite


def registry_smoke() -> dict:
    """Enumerate the registry and gate reconciliation + parity on the
    tiny set; returns the smoke summary for the artifact."""
    names = available_backends()
    assert set(CANDIDATES) <= set(names), names
    assert "adaptive" in names
    stable = [n for n in names if get_backend(n).bit_stable]
    traced = AcSpgemmOptions(device_trace=True)
    checked = 0
    for entry in tiny_entries():
        a, b = squared_operands(entry.build())
        ref = ac_spgemm(a, b)
        for name in names:
            res = run_backend(name, a, b, traced)
            summary = reconcile(res)  # raises ReconciliationError on drift
            assert summary["checked"], (name, entry.name)
            if get_backend(name).bit_stable:
                assert (
                    res.matrix.values.tobytes() == ref.matrix.values.tobytes()
                    and res.matrix.col_idx.tobytes()
                    == ref.matrix.col_idx.tobytes()
                ), f"{name} is not byte-identical to reference on {entry.name}"
            checked += 1
    return {
        "engines": list(names),
        "bit_stable_engines": stable,
        "runs_reconciled": checked,
    }


def grade(entries) -> tuple[list[dict], dict]:
    opts = AcSpgemmOptions()
    rows: list[dict] = []
    for entry in entries:
        a, b = squared_operands(entry.build())
        cycles = {
            name: run_backend(name, a, b, opts).total_cycles
            for name in CANDIDATES
        }
        adaptive = run_backend("adaptive", a, b, opts)
        oracle = min(cycles, key=cycles.get)
        match = adaptive.dispatched_to == oracle
        # routing regret: the routed engine's standalone cycles vs the
        # oracle engine's (0.0 on a match); the probe is reported as a
        # separate overhead because it is paid on every multiply
        loss = cycles[adaptive.dispatched_to] / cycles[oracle] - 1.0
        probe = (
            adaptive.total_cycles - cycles[adaptive.dispatched_to]
        ) / cycles[oracle]
        rows.append(
            {
                "matrix": entry.name,
                "family": entry.family,
                "oracle": oracle,
                "dispatched_to": adaptive.dispatched_to,
                "match": match,
                "adaptive_cycles": round(adaptive.total_cycles, 1),
                "loss_vs_oracle": round(loss, 4),
                "probe_overhead": round(probe, 4),
                "cycles": {k: round(v, 1) for k, v in cycles.items()},
            }
        )
    n = len(rows)
    matches = sum(r["match"] for r in rows)
    mism_losses = [r["loss_vs_oracle"] for r in rows if not r["match"]]
    summary = {
        "matrices": n,
        "matches": matches,
        "match_rate": round(matches / n, 4) if n else 1.0,
        "max_mismatch_loss": round(max(mism_losses), 4) if mism_losses else 0.0,
        "mean_loss": round(sum(r["loss_vs_oracle"] for r in rows) / n, 4)
        if n
        else 0.0,
        "mean_probe_overhead": round(
            sum(r["probe_overhead"] for r in rows) / n, 4
        )
        if n
        else 0.0,
        "oracle_wins": {
            name: sum(1 for r in rows if r["oracle"] == name)
            for name in CANDIDATES
        },
        "selected": {
            name: sum(1 for r in rows if r["dispatched_to"] == name)
            for name in CANDIDATES
        },
    }
    return rows, summary


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="thin the suite for CI (every 8th entry)")
    parser.add_argument("--out", default="BENCH_selector.json")
    args = parser.parse_args(argv)

    smoke = registry_smoke()
    print(f"registry smoke: {len(smoke['engines'])} engines, "
          f"{smoke['runs_reconciled']} traced runs reconciled exactly")

    rows, summary = grade(entry_list(args.smoke))
    payload = {
        "bench": "selector",
        "mode": "smoke" if args.smoke else "full",
        "gates": {
            "min_match_rate": MIN_MATCH_RATE,
            "max_mismatch_loss": MAX_MISMATCH_LOSS,
        },
        "registry_smoke": smoke,
        "summary": summary,
        "rows": rows,
    }
    out = Path(args.out)
    out.write_text(json.dumps(payload, indent=2, sort_keys=True))
    print(
        f"selector: {summary['matches']}/{summary['matrices']} matched the "
        f"oracle (rate {summary['match_rate']:.2%}), worst mismatch regret "
        f"{summary['max_mismatch_loss']:+.2%}, mean regret "
        f"{summary['mean_loss']:+.2%}, mean probe overhead "
        f"{summary['mean_probe_overhead']:+.2%}"
    )
    print(f"oracle wins {summary['oracle_wins']}")
    print(f"selected    {summary['selected']}")
    print(f"wrote {out}")

    failures = []
    if summary["match_rate"] < MIN_MATCH_RATE:
        failures.append(
            f"match rate {summary['match_rate']:.2%} < {MIN_MATCH_RATE:.0%}"
        )
    if summary["max_mismatch_loss"] > MAX_MISMATCH_LOSS:
        worst = max(
            (r for r in rows if not r["match"]),
            key=lambda r: r["loss_vs_oracle"],
        )
        failures.append(
            f"mismatch loss {summary['max_mismatch_loss']:+.2%} > "
            f"{MAX_MISMATCH_LOSS:.0%} on {worst['matrix']} "
            f"(chose {worst['dispatched_to']}, oracle {worst['oracle']})"
        )
    for f in failures:
        print(f"GATE FAILED: {f}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())

#!/usr/bin/env python
"""Multi-device SUMMA gates: overlap speedup and cross-P byte identity.

Two integer-valued workloads (exact in float64 under any summation
order — see the contract in ``repro.multi.summa``):

* **amg-galerkin** — ``A @ P`` on the 5-point Laplacian with an
  aggregation prolongation, the paper's headline chained use case;
* **graph-square** — squaring a 0/1 adjacency matrix (triangle
  counting / MCL expansion structure), whose uniform tile mass puts
  receive-dependent tiles on the critical path.

Gates (hard failures, non-zero exit):

1. for every P in {1, 4}: merged output digest equals the
   single-device ``ac_spgemm`` digest (byte identity across P);
2. the 4-colour pipelined timeline strictly beats blocking broadcasts
   on modeled end-to-end cycles for the graph workload at P=4 — the
   overlap must actually be claimed;
3. ``SummaResult.reconcile()`` passes exactly on every run (per-link
   interconnect counters re-derive from the partition).

The JSON artifact is fully deterministic — CI runs the bench twice and
byte-compares the two files.

Usage::

    PYTHONPATH=src python benchmarks/bench_summa.py [--tiny] [--out BENCH_pr10.json]
"""

from __future__ import annotations

import argparse
import hashlib
import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

import numpy as np

from repro import AcSpgemmOptions, ac_spgemm
from repro.matrices.generators import (
    aggregation_prolongation,
    poisson_2d,
    random_uniform,
)
from repro.multi import NodeConfig, summa_spgemm

GRIDS = (1, 4)


def digest(m) -> str:
    h = hashlib.sha256()
    h.update(m.row_ptr.tobytes())
    h.update(m.col_idx.tobytes())
    h.update(m.values.tobytes())
    return h.hexdigest()


def zero_one(m):
    """Strip values to 0/1: an adjacency matrix with integer products."""
    out = m.copy()
    out.values = np.ones_like(out.values)
    return out


def workloads(tiny: bool):
    side = 32 if tiny else 64
    n = 120 if tiny else 320
    avg = 6 if tiny else 10
    a = poisson_2d(side)
    p = aggregation_prolongation(side)
    adj = zero_one(random_uniform(n, n, avg, seed=10))
    return [
        ("amg-galerkin", a, p),
        ("graph-square", adj, adj),
    ]


def main(argv=None) -> int:
    ap = argparse.ArgumentParser()
    ap.add_argument("--tiny", action="store_true", help="CI smoke sizes")
    ap.add_argument("--out", default=None, help="write the JSON artifact")
    args = ap.parse_args(argv)

    opts = AcSpgemmOptions()
    failures: list[str] = []
    records = []
    for name, a, b in workloads(args.tiny):
        single = ac_spgemm(a, b, opts)
        ref_digest = digest(single.matrix)
        row = {
            "workload": name,
            "rows": a.rows,
            "nnz_a": a.nnz,
            "nnz_b": b.nnz,
            "single_device_digest": ref_digest,
            "grids": {},
        }
        for devices in GRIDS:
            res = summa_spgemm(
                a, b, NodeConfig(devices=devices), opts, backend="ac-spgemm"
            )
            recon = res.reconcile()
            d = digest(res.matrix)
            if d != ref_digest:
                failures.append(
                    f"{name}: P={devices} digest {d[:12]} != "
                    f"single-device {ref_digest[:12]}"
                )
            row["grids"][str(devices)] = {
                "digest": d,
                "byte_identical": d == ref_digest,
                "makespan_pipelined": res.makespan_pipelined,
                "makespan_blocking": res.makespan_blocking,
                "overlap_saved_cycles": res.overlap_saved_cycles,
                "stage_cycles": {
                    k: res.stage_cycles[k] for k in sorted(res.stage_cycles)
                },
                "links": recon["links"],
            }
            if devices == 4 and name == "graph-square":
                if not res.makespan_pipelined < res.makespan_blocking:
                    failures.append(
                        f"{name}: pipelined {res.makespan_pipelined} did not "
                        f"beat blocking {res.makespan_blocking}"
                    )
                else:
                    row["overlap_speedup"] = (
                        res.makespan_blocking / res.makespan_pipelined
                    )
        records.append(row)
        saved = row["grids"]["4"]["overlap_saved_cycles"]
        print(
            f"{name:14s} nnz_c={single.matrix.nnz:7d}  "
            f"digest={ref_digest[:12]}  "
            f"P identical={[row['grids'][str(g)]['byte_identical'] for g in GRIDS]}  "
            f"overlap saved={saved:.0f} cycles"
        )

    doc = {
        "bench": "summa",
        "tiny": args.tiny,
        "grids": list(GRIDS),
        "workloads": records,
        "gates": {
            "cross_p_byte_identity": all(
                r["grids"][str(g)]["byte_identical"]
                for r in records
                for g in GRIDS
            ),
            "pipelined_beats_blocking": not any(
                "did not beat" in f for f in failures
            ),
            "reconcile_exact": True,  # reconcile() raises on mismatch
        },
        "failures": failures,
    }
    if args.out:
        Path(args.out).write_text(json.dumps(doc, indent=2, sort_keys=True))
        print(f"wrote {args.out}")
    if failures:
        for f in failures:
            print(f"GATE FAILED: {f}", file=sys.stderr)
        return 1
    print("all SUMMA gates passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

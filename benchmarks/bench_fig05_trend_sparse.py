"""Figure 5: GFLOPS trend over temporary-element count, highly sparse
matrices (a <= 42), single and double precision.

Paper claim reproduced: AC-SpGEMM's trend line sits above all five
competitors across the sparse range.
"""

from __future__ import annotations

from conftest import run_once

from repro.bench import GPU_LINEUP, figure5_trends, format_table, write_csv


def _trend_table(records, dtype):
    trends = figure5_trends(records, dtype)
    # align bins by centre (all algorithms share the same temp values)
    centres = sorted({c for pts in trends.values() for c, _, _ in pts})
    rows = []
    for c in centres:
        row = [f"{c:.3g}"]
        for alg in GPU_LINEUP:
            val = next((v for cc, v, _ in trends.get(alg, []) if cc == c), None)
            row.append(round(val, 3) if val is not None else "")
        rows.append(tuple(row))
    return rows


def _check_ac_leads(records, dtype) -> float:
    """Fraction of bins where AC-SpGEMM has the highest mean GFLOPS."""
    trends = figure5_trends(records, dtype)
    ac = {c: v for c, v, _ in trends["ac-spgemm"]}
    wins = total = 0
    for c, ac_v in ac.items():
        total += 1
        if all(
            ac_v >= next((v for cc, v, _ in pts if cc == c), 0.0)
            for alg, pts in trends.items()
            if alg != "ac-spgemm"
        ):
            wins += 1
    return wins / total if total else 0.0


def test_fig05_sparse_trend_double(benchmark, full_records, results_dir):
    rows = run_once(benchmark, lambda: _trend_table(full_records, "float64"))
    headers = ["temp_elements"] + GPU_LINEUP
    write_csv(results_dir / "fig05_trend_double.csv", headers, rows)
    print()
    print(format_table(headers, rows, title="Figure 5 (double, sparse a<=42)"))
    lead = _check_ac_leads(full_records, "float64")
    print(f"AC-SpGEMM leads in {100 * lead:.0f}% of temp bins")
    assert lead >= 0.5, "AC-SpGEMM should dominate the sparse trend"


def test_fig05_sparse_trend_float(benchmark, full_records, results_dir):
    rows = run_once(benchmark, lambda: _trend_table(full_records, "float32"))
    headers = ["temp_elements"] + GPU_LINEUP
    write_csv(results_dir / "fig05_trend_float.csv", headers, rows)
    print()
    print(format_table(headers, rows, title="Figure 5 (float, sparse a<=42)"))
    lead = _check_ac_leads(full_records, "float32")
    print(f"AC-SpGEMM leads in {100 * lead:.0f}% of temp bins")
    assert lead >= 0.5
